"""Benches: the batched design-space engine (scaling flows).

Each optimiser flow is timed cold — the device-construction memo and
the warm-start bracket cache are cleared before every round — and
paired with its sequential (scalar-oracle) counterpart so
``BENCH_flows.json`` records the before/after of the vectorisation.
The sequential sub-V_th sweeps are the slow half; set
``REPRO_BENCH_QUICK=1`` (the CI quick mode) to skip them.
"""

import os

import pytest

from repro.cache import device_memo
from repro.scaling.batch import bracket_memo
from repro.scaling.multivth import derive_flavours
from repro.scaling.roadmap import node_by_name
from repro.scaling.sensitivity import headline_under_calibration
from repro.scaling.subvth import build_sub_vth_family
from repro.scaling.supervth import build_super_vth_family

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
slow = pytest.mark.skipif(
    QUICK, reason="sequential oracle skipped in quick mode")


def _cold():
    """Clear the caches a prior round (or fixture) may have warmed."""
    device_memo.clear()
    bracket_memo.clear()


def run_cold(benchmark, func, *args, **kwargs):
    """One cold-cache round per bench (flows are deterministic)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, setup=_cold,
                              rounds=1, iterations=1, warmup_rounds=0)


def test_bench_super_family_batch(benchmark):
    family = run_cold(benchmark, build_super_vth_family)
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


def test_bench_super_family_sequential(benchmark):
    family = run_cold(benchmark, build_super_vth_family,
                      solver="sequential")
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


def test_bench_sub_family_batch(benchmark):
    family = run_cold(benchmark, build_sub_vth_family)
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


@slow
def test_bench_sub_family_sequential(benchmark):
    family = run_cold(benchmark, build_sub_vth_family,
                      solver="sequential")
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


def test_bench_multivth_menu_batch(benchmark):
    menu = run_cold(benchmark, derive_flavours, node_by_name("45nm"), 47.0)
    assert menu["lvt"].vth_mv() < menu["hvt"].vth_mv()


@slow
def test_bench_multivth_menu_sequential(benchmark):
    menu = run_cold(benchmark, derive_flavours, node_by_name("45nm"), 47.0,
                    solver="sequential")
    assert menu["lvt"].vth_mv() < menu["hvt"].vth_mv()


def test_bench_sensitivity_rebuild_batch(benchmark):
    result = run_cold(benchmark, headline_under_calibration,
                      sce_prefactor=2.2)
    assert result.snm_advantage > 0.0


@slow
def test_bench_sensitivity_rebuild_sequential(benchmark):
    result = run_cold(benchmark, headline_under_calibration,
                      sce_prefactor=2.2, solver="sequential")
    assert result.snm_advantage > 0.0
