"""Benches: the batched design-space engine (scaling flows).

Each optimiser flow is timed cold — the device-construction memo and
the warm-start bracket cache are cleared before every round — and
paired with its sequential (scalar-oracle) counterpart so
``BENCH_flows.json`` records the before/after of the vectorisation.
The sequential sub-V_th sweeps are the slow half; set
``REPRO_BENCH_QUICK=1`` (the CI quick mode) to skip them.
"""

import os

import numpy as np
import pytest

from repro import perf
from repro.cache import device_memo
from repro.device.mosfet import Polarity
from repro.scaling.batch import bracket_memo, optimize_doping_stack
from repro.scaling.multivth import derive_flavours
from repro.scaling.roadmap import node_by_name
from repro.scaling.sensitivity import headline_under_calibration
from repro.scaling.subvth import (HALO_RATIO_GRID, SS_TIE_TOLERANCE,
                                  build_sub_vth_family,
                                  optimize_doping_for_length)
from repro.scaling.supervth import build_super_vth_family

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
slow = pytest.mark.skipif(
    QUICK, reason="sequential oracle skipped in quick mode")


def _cold():
    """Clear the caches a prior round (or fixture) may have warmed."""
    device_memo.clear()
    bracket_memo.clear()


def run_cold(benchmark, func, *args, **kwargs):
    """One cold-cache round per bench (flows are deterministic)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, setup=_cold,
                              rounds=1, iterations=1, warmup_rounds=0)


def test_bench_super_family_batch(benchmark):
    family = run_cold(benchmark, build_super_vth_family)
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


def test_bench_super_family_sequential(benchmark):
    family = run_cold(benchmark, build_super_vth_family,
                      solver="sequential")
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


def test_bench_sub_family_batch(benchmark):
    family = run_cold(benchmark, build_sub_vth_family)
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


@slow
def test_bench_sub_family_sequential(benchmark):
    family = run_cold(benchmark, build_sub_vth_family,
                      solver="sequential")
    assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")


def test_bench_multivth_menu_batch(benchmark):
    menu = run_cold(benchmark, derive_flavours, node_by_name("45nm"), 47.0)
    assert menu["lvt"].vth_mv() < menu["hvt"].vth_mv()


@slow
def test_bench_multivth_menu_sequential(benchmark):
    menu = run_cold(benchmark, derive_flavours, node_by_name("45nm"), 47.0,
                    solver="sequential")
    assert menu["lvt"].vth_mv() < menu["hvt"].vth_mv()


# -- tail-heavy length sweep ------------------------------------------------
#
# A wide gate-length sweep on one node: the short-channel lanes keep
# bisecting long after the long-channel lanes have converged, so by the
# late sweeps most of the stack is retired — exactly the regime the
# active-set compression in ``repro.numerics`` targets.  The paired
# sequential oracle records the before/after in BENCH_flows.json, and
# the batch bench stores the measured live-lane fraction as extra_info.

TAIL_LENGTHS_NM = np.geomspace(34.0, 90.0, 24)
TAIL_IOFF_A_PER_UM = 100e-12
TAIL_VDD_LEAK = 0.25


def _tail_node():
    return node_by_name("90nm")


def _tail_sweep_batch():
    return optimize_doping_stack(
        _tail_node(), TAIL_LENGTHS_NM, [(Polarity.NFET, 1.0)],
        HALO_RATIO_GRID, TAIL_IOFF_A_PER_UM, TAIL_VDD_LEAK,
        SS_TIE_TOLERANCE)


def _tail_sweep_sequential():
    return [optimize_doping_for_length(
                _tail_node(), float(l), ioff_target=TAIL_IOFF_A_PER_UM,
                vdd_leak=TAIL_VDD_LEAK, solver="sequential")
            for l in TAIL_LENGTHS_NM]


def test_bench_doping_sweep_tail_batch(benchmark):
    before = perf.snapshot()
    rows = run_cold(benchmark, _tail_sweep_batch)
    assert len(rows) == len(TAIL_LENGTHS_NM)
    moved = perf.delta(before)
    total = moved.get("numerics.total_lanes", 0)
    assert total > 0
    benchmark.extra_info["active_lane_fraction"] = round(
        moved.get("numerics.active_lanes", 0) / total, 4)


def test_bench_doping_sweep_tail_sequential(benchmark):
    seq = run_cold(benchmark, _tail_sweep_sequential)
    _cold()
    batch = _tail_sweep_batch()
    seq_n = np.array([d.profile.n_sub_cm3 for d in seq])
    batch_n = np.array([row[0].profile.n_sub_cm3 for row in batch])
    rel = float(np.max(np.abs(batch_n / seq_n - 1.0)))
    assert rel <= 1e-9
    benchmark.extra_info["max_rel_diff_vs_batch"] = rel


def test_bench_sensitivity_rebuild_batch(benchmark):
    result = run_cold(benchmark, headline_under_calibration,
                      sce_prefactor=2.2)
    assert result.snm_advantage > 0.0


@slow
def test_bench_sensitivity_rebuild_sequential(benchmark):
    result = run_cold(benchmark, headline_under_calibration,
                      sce_prefactor=2.2, solver="sequential")
    assert result.snm_advantage > 0.0
