"""Benches: the extension experiments (multi-V_th, high-k, temperature).

These exercise the paper's forward-looking remarks: multiple V_th
offerings (Section 3.2), high-k as "the only solution" for oxide
scaling (Section 2.2), and environmental robustness of the proposed
devices.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_bench_ext_multivth(benchmark):
    result = run_once(benchmark, run_experiment, "ext_multivth")
    assert result.all_hold()


def test_bench_ext_highk(benchmark):
    result = run_once(benchmark, run_experiment, "ext_highk")
    assert result.all_hold()
    ss = result.get_series("S_S at 32nm vs EOT")
    assert np.all(np.diff(ss.y) < 0.0)


def test_bench_ext_temperature(benchmark):
    result = run_once(benchmark, run_experiment, "ext_temperature")
    assert result.all_hold()


def test_bench_ext_corners(benchmark):
    result = run_once(benchmark, run_experiment, "ext_corners")
    assert result.all_hold()


def test_bench_eq3(benchmark):
    result = run_once(benchmark, run_experiment, "eq3")
    assert result.all_hold()


def test_bench_ext_pareto(benchmark):
    result = run_once(benchmark, run_experiment, "ext_pareto")
    assert result.all_hold()
    sub = result.get_series("frontier sub-vth")
    sup = result.get_series("frontier super-vth")
    # Who wins: the sub-V_th frontier reaches lower energies.
    assert sub.y.min() < sup.y.min()


def test_bench_ext_projection(benchmark):
    result = run_once(benchmark, run_experiment, "ext_projection")
    assert result.all_hold()
    ss_sup = result.get_series("S_S projection super-vth")
    ss_sub = result.get_series("S_S projection sub-vth")
    assert ss_sup.y[-1] > ss_sub.y[-1] + 20.0   # the gap at 16nm


def test_bench_ext_sensitivity(benchmark):
    result = run_once(benchmark, run_experiment, "ext_sensitivity")
    assert result.all_hold()
    snm = result.get_series("SNM advantage vs calibration")
    assert snm.y.min() > 0.08


def test_bench_ext_dvs(benchmark):
    result = run_once(benchmark, run_experiment, "ext_dvs")
    assert result.all_hold()


def test_bench_headlines(benchmark):
    result = run_once(benchmark, run_experiment, "headlines")
    assert result.all_hold()
    assert len(result.rows) == 5
