"""Bench: Fig. 11 — normalized FO1 delay at 250 mV under both strategies.

Shape (paper): sub-V_th delay improves monotonically (~18%/gen in the
paper) while super-V_th delay blows up; crossover by the 32nm node.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig11(benchmark):
    result = run_once(benchmark, run_experiment, "fig11")
    assert result.all_hold()
    sub = result.get_series("delay sub-vth @250mV (normalized)")
    sup = result.get_series("delay super-vth @250mV (normalized)")
    assert np.all(np.diff(sub.y) < 0.0)      # monotone improvement
    assert sup.y[-1] > 1.0                   # super-vth regresses
