"""Bench: Fig. 7 — S_S vs L_poly, fixed vs optimized doping (45nm node).

Shape (paper): the optimized-doping curve improves monotonically with
gate length and beats the fixed profile at long gates.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig7(benchmark):
    result = run_once(benchmark, run_experiment, "fig7")
    assert result.all_hold()
    fixed = result.get_series("fixed doping profile")
    optimized = result.get_series("optimized doping")
    assert optimized.y[-1] < fixed.y[-1]
    assert optimized.y[-1] < optimized.y[0]
