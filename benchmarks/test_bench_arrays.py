"""Benches: the compiled batched MNA engine at array scale.

The headline gate is the **tentpole speedup**: a 16-row SRAM column's
DC characterisation — 64 wordline stimulus points x 8 variation
corners, 512 lanes of a 35-unknown nodal system — must run >= 10x
faster *per lane* through the compiled batched engine than through
the looped scalar :class:`~repro.circuit.mna.NodalSolver` oracle,
while agreeing to <= 1e-9 V on every node of the lanes both solved.
The oracle is timed on a lane subset (it is three decades slower; a
full 512-lane oracle run would dominate the suite), which is exactly
the per-lane comparison the gate is stated over.  Set
``REPRO_BENCH_QUICK=1`` (the CI quick mode) to shrink the oracle
subset and skip the speedup gate (equivalence is always asserted).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import run_once

from repro.circuit.mna_batch import solve_dc_batch
from repro.circuit.sram import SramCell
from repro.circuit.sram_array import build_column, min_write_pulse
from repro.device.mosfet import nfet, pfet
from repro.experiments import run_experiment

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The gated workload: a 16-row column, 64 stimulus x 8 corners.
N_ROWS = 16
N_STIMULUS = 64
N_CORNERS = 8
VDD = 0.30

#: Per-lane batch-vs-looped-oracle wall-clock gate.
SPEEDUP_GATE = 10.0
#: Max |dV| over all nodes of the commonly solved lanes.
EQUIV_GATE_V = 1e-9

#: Oracle subset: every 16th stimulus x every 4th corner (8 lanes),
#: every 32nd x last-only (2 lanes) in quick mode.
ORACLE_STIM_STRIDE = 16
ORACLE_CORNER_STRIDE = 4


def _cell() -> SramCell:
    n = nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
             n_p_halo_cm3=1.5e18)
    p = pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
             n_p_halo_cm3=1.5e18, width_um=2.0)
    return SramCell(pulldown=n.with_width_um(2.0),
                    pullup=p.with_width_um(1.0),
                    access=n.with_width_um(1.0), vdd=VDD)


def _workload():
    column = build_column(_cell(), N_ROWS, stored=0)
    wl = np.linspace(0.0, VDD, N_STIMULUS).reshape(N_STIMULUS, 1)
    corners = np.linspace(-0.02, 0.02, N_CORNERS)
    return column, wl, corners


def test_bench_array_dc_batched(benchmark):
    """The 512-lane batched DC solve of the 16-row column alone."""
    column, wl, corners = _workload()

    result = run_once(
        benchmark, lambda: solve_dc_batch(
            column.circuit, stimulus={"wl0": wl}, dvth_n_v=corners,
            initial=column.seed()))
    lanes = N_STIMULUS * N_CORNERS
    benchmark.extra_info["lanes"] = lanes
    benchmark.extra_info["n_unknowns"] = len(
        column.circuit.unknown_nodes())
    assert result.batch_shape == (N_STIMULUS, N_CORNERS)


def test_bench_array_dc_speedup_vs_sequential(benchmark):
    """Tentpole gate: batched vs looped-NodalSolver DC, per lane.

    Times the composite (full batched solve + oracle subset); the
    per-lane speedup, the measured equivalence and the lane counts
    ride along in ``extra_info`` and into ``BENCH_arrays.json``.
    """
    column, wl, corners = _workload()
    stim_stride = 2 * ORACLE_STIM_STRIDE if QUICK else ORACLE_STIM_STRIDE
    corner_sel = (slice(-1, None) if QUICK
                  else slice(None, None, ORACLE_CORNER_STRIDE))
    facts: dict[str, float] = {}

    def composite():
        start = time.perf_counter()
        batch = solve_dc_batch(column.circuit, stimulus={"wl0": wl},
                               dvth_n_v=corners, initial=column.seed())
        t_batch = time.perf_counter() - start
        start = time.perf_counter()
        oracle = solve_dc_batch(column.circuit,
                                stimulus={"wl0": wl[::stim_stride]},
                                dvth_n_v=corners[corner_sel],
                                initial=column.seed(),
                                solver="sequential")
        t_oracle = time.perf_counter() - start
        lanes_batch = N_STIMULUS * N_CORNERS
        lanes_oracle = int(np.prod(oracle.batch_shape))
        equiv = max(
            float(np.max(np.abs(
                batch[node][::stim_stride][:, corner_sel] - oracle[node])))
            for node in oracle.voltages)
        facts.update(
            t_batch_s=t_batch, t_oracle_s=t_oracle,
            lanes_batch=lanes_batch, lanes_oracle=lanes_oracle,
            per_lane_speedup=(t_oracle / lanes_oracle)
                             / (t_batch / lanes_batch),
            max_abs_dv=equiv,
        )
        return batch

    run_once(benchmark, composite)
    benchmark.extra_info.update(
        {k: (round(v, 6) if isinstance(v, float) and k != "max_abs_dv"
             else v)
         for k, v in facts.items()})
    assert facts["max_abs_dv"] <= EQUIV_GATE_V
    if not QUICK:
        assert facts["per_lane_speedup"] >= SPEEDUP_GATE


def test_bench_array_write_search(benchmark):
    """Binary-searched minimum write pulse, every probe one batched
    transient over the access corners."""
    cell = _cell()
    corners = np.array([-0.02, 0.0, 0.02])
    widths = run_once(
        benchmark, lambda: min_write_pulse(cell, 4, dvth_n_v=corners,
                                           n_probes=5, n_steps=48))
    benchmark.extra_info["pulse_widths_s"] = [float(w) for w in widths]
    assert np.all(np.isfinite(widths))
    assert np.all(np.diff(widths) >= 0.0)


def test_bench_ext_array(benchmark):
    """The provenance-tracked ext_array experiment end to end."""
    result = run_once(benchmark, run_experiment, "ext_array")
    assert result.all_hold()
    per_cell = result.get_series("per-cell bitline leakage, sub-vth")
    assert np.all(np.diff(per_cell.y) < 0.0)
