"""Bench: Table 3 — sub-V_th device family.

Shape assertions (paper): gate lengths longer than the roadmap and
scaling slower than 30%/generation; normalized C_L*S_S^2 and C_L*S_S
falling every generation; S_S nearly flat.
"""

from conftest import run_once

from repro.experiments import run_experiment
from repro.scaling.subvth import build_sub_vth_family


def test_bench_table3(benchmark):
    result = run_once(benchmark, run_experiment, "table3")
    assert result.all_hold()
    assert len(result.rows) == 4


def test_bench_subvth_optimizer(benchmark):
    """Time the raw energy-optimal L_poly flow (uncached)."""
    family = run_once(benchmark, build_sub_vth_family)
    ss = [d.nfet.ss_mv_per_dec for d in family.designs]
    assert max(ss) - min(ss) < 5.0
