"""Bench: Fig. 8 — energy and delay factors vs L_poly (45nm node).

Shape (paper): interior minima; the energy-optimal gate is longer than
the roadmap's 32 nm, and choosing it costs almost no delay.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig8(benchmark):
    result = run_once(benchmark, run_experiment, "fig8")
    assert result.all_hold()
    energy = result.get_series("energy factor C_L*S_S^2")
    e_idx = int(np.argmin(energy.y))
    assert 0 < e_idx < energy.y.size - 1       # interior minimum
    assert energy.x[e_idx] > 32.0              # longer than roadmap gate
