"""Bench: Fig. 1(b) — the optimised 90nm doping-profile raster."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig1(benchmark):
    result = run_once(benchmark, run_experiment, "fig1")
    assert result.all_hold()
    edge = result.get_series("doping at channel edge")
    mid = result.get_series("doping at mid-channel")
    assert edge.y.max() > mid.y.max()
