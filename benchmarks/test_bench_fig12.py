"""Bench: Fig. 12 — chain energy and V_min under both strategies.

Shape (paper): ~23% less energy at the 32nm node (>= 8% asserted, the
model's weak-inversion capacitances give ~15%), sub-V_th V_min flat
within ~15 mV while super-V_th V_min climbs > 20 mV.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig12(benchmark):
    result = run_once(benchmark, run_experiment, "fig12")
    assert result.all_hold()
    e_sub = result.get_series("energy sub-vth @Vmin")
    e_sup = result.get_series("energy super-vth @Vmin")
    v_sub = result.get_series("Vmin sub-vth")
    v_sup = result.get_series("Vmin super-vth")
    assert e_sub.y[-1] < 0.92 * e_sup.y[-1]
    assert (v_sub.y.max() - v_sub.y.min()) < 15.0     # mV
    assert (v_sup.y[-1] - v_sup.y[0]) > 20.0          # mV
