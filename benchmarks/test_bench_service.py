"""Benches: the design-space service tiers.

The acceptance numbers for ``repro serve``: a warm (surrogate) query
must answer in well under a millisecond at the median, the surrogate
fit (pchip densify included) must stay interactive, and the grid fill
and exact fallback are recorded for regression tracking.  Runs under
``tools/bench_record.py --suite service`` into ``BENCH_service.json``.
"""

import pytest
from conftest import run_once

from repro.service import (DesignSpaceService, GridSpec, build_grid,
                           fit_surrogate)
from repro.scaling.roadmap import node_by_name

#: Serving axis density (pchip-eligible) over one node — the same
#: window the test suite validates to <= SURROGATE_TOL_REL.
SPEC = GridSpec(
    nodes=("65nm",),
    l_ratios=tuple(round(1.5 + 0.05 * i, 4) for i in range(11)),
    log10_ioff=(-10.6, -10.4, -10.2, -10.0),
    vdd_v=(0.24, 0.26, 0.28, 0.30, 0.32),
)

#: Two-shard spec for timing the fill itself.
MICRO = GridSpec(nodes=("65nm",), l_ratios=(1.5, 2.0),
                 log10_ioff=(-10.5, -10.0), vdd_v=(0.25, 0.30))

NODE = node_by_name("65nm")

WARM_QUERY = {"query": "metrics", "node": "65nm",
              "l_poly_nm": 1.73 * NODE.l_poly_nm,
              "ioff_target_a_per_um": 10.0 ** -10.3, "vdd_v": 0.283}


@pytest.fixture(scope="module")
def grid():
    return build_grid(SPEC)


@pytest.fixture(scope="module")
def service(grid):
    return DesignSpaceService(fit_surrogate(grid))


def test_bench_grid_fill(benchmark):
    filled = run_once(benchmark, build_grid, MICRO)
    assert filled.spec.shape == (1, 2, 2, 2)


def test_bench_surrogate_fit(benchmark, grid):
    surrogate = run_once(benchmark, fit_surrogate, grid)
    assert surrogate.nodes == ("65nm",)


def test_bench_warm_query(benchmark, service):
    """The headline acceptance number: warm queries answer from the
    densified linear interpolants in sub-ms at the median."""
    response = benchmark(service.handle, WARM_QUERY)
    assert response["ok"] is True
    assert response["provenance"]["source"] == "surrogate"
    assert benchmark.stats.stats.median < 1e-3


def test_bench_exact_fallback(benchmark, service):
    """The cache-miss path: a full doping root-solve plus every metric
    (SNM curves, the V_min sweep) — what a cold point costs."""
    request = dict(WARM_QUERY, vdd_v=0.45)
    response = run_once(benchmark, service.handle, request)
    assert response["ok"] is True
    assert response["provenance"]["source"] == "exact"
