"""Benchmark-suite configuration.

Each bench regenerates one of the paper's tables/figures through the
experiment registry, times it with pytest-benchmark, and asserts the
paper's shape claims on the result.  Device families are pre-warmed
once so individual benches time their own figure assembly, not the
shared optimiser runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.families import sub_vth_family, super_vth_family


@pytest.fixture(scope="session", autouse=True)
def warm_families():
    """Build (and cache) both device families once per session."""
    super_vth_family()
    sub_vth_family()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` under pytest-benchmark with a single round.

    Experiments are deterministic and moderately expensive; one round
    per bench keeps the suite fast while still recording wall time.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
