"""Benches: the hot computational kernels underneath the experiments.

Useful for performance regression tracking: device construction (halo
self-consistency), the Poisson solver, VTC/SNM extraction, transient
switching, and the V_min search.
"""

import numpy as np
from conftest import run_once

from repro.circuit import Inverter, fo1_delay, noise_margins
from repro.circuit.energy import find_vmin
from repro.device import nfet, pfet
from repro.tcad.simulator import DeviceSimulator


def _build_device():
    return nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


def _build_inverter(vdd=0.25):
    return Inverter(
        nfet=_build_device(),
        pfet=pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                  n_p_halo_cm3=1.5e18, width_um=2.0),
        vdd=vdd,
    )


def test_bench_device_construction(benchmark):
    dev = benchmark(_build_device)
    assert 70.0 < dev.ss_mv_per_dec < 100.0


def test_bench_compact_iv_evaluation(benchmark):
    dev = _build_device()
    vgs = np.linspace(0.0, 1.2, 512)
    vds = np.full_like(vgs, 0.6)
    currents = benchmark(dev.iv.ids, vgs, vds)
    assert np.all(np.asarray(currents) >= 0.0)


def test_bench_poisson_solve(benchmark):
    sim = DeviceSimulator(_build_device())
    solution = benchmark(sim.solve, 0.6)
    assert solution.iterations < 100


def test_bench_poisson_batch_sweep(benchmark):
    """The batched kernel on a full accumulation->inversion bias grid."""
    sim = DeviceSimulator(_build_device())
    vgs = np.linspace(-0.3, 1.2, 41)
    batch = benchmark(sim.solve_batch, vgs)
    assert int(batch.iterations.max()) < 100


def test_bench_numeric_id_vg(benchmark):
    sim = DeviceSimulator(_build_device())
    vgs = np.linspace(-0.1, 1.2, 27)
    curve = run_once(benchmark, sim.id_vg, 1.2, vgs)
    assert curve.ids[-1] > curve.ids[0]


def test_bench_snm_extraction(benchmark):
    inv = _build_inverter()
    nm = run_once(benchmark, noise_margins, inv)
    assert nm.snm > 0.0


def test_bench_transient_fo1(benchmark):
    inv = _build_inverter()
    result = run_once(benchmark, fo1_delay, inv, True)
    assert result.transient_s > 0.0


def test_bench_vmin_search(benchmark):
    inv = _build_inverter(vdd=0.3)
    result = run_once(benchmark, find_vmin, inv)
    assert 0.08 < result.vmin < 0.7
