"""Bench: Fig. 6 — chain energy/cycle and V_min under super-V_th scaling.

Shape (paper): energy falls with scaling, V_min rises ~40 mV, and the
Eq. 8 factor C_L*S_S^2 tracks the simulated energy (r > 0.9).
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig6(benchmark):
    result = run_once(benchmark, run_experiment, "fig6")
    assert result.all_hold()
    energy = result.get_series("energy/cycle @Vmin")
    vmin = result.get_series("Vmin")
    factor = result.get_series("C_L*S_S^2 (normalized to energy)")
    assert energy.total_change() < 0.0
    assert 20.0 < (vmin.y[-1] - vmin.y[0]) < 80.0     # mV
    assert energy.pearson_r(factor) > 0.90
