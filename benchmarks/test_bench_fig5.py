"""Bench: Fig. 5 — transient FO1 delay vs node under super-V_th scaling.

Shape (paper): nominal-V_dd delay improves (but slower than 30%/gen);
250 mV delay gets worse with scaling.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig5(benchmark):
    result = run_once(benchmark, run_experiment, "fig5")
    assert result.all_hold()
    nominal = result.get_series("delay @nominal Vdd")
    sub = result.get_series("delay @250mV")
    assert nominal.total_change() < 0.0
    assert sub.total_change() > 0.5
