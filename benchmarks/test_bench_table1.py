"""Bench: Table 1 — generalized scaling rules."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_table1(benchmark):
    result = run_once(benchmark, run_experiment, "table1")
    assert result.all_hold()
    assert len(result.rows) == 6
