"""Benches: the rare-event yield engine (QMC + importance sampling).

The headline gate is **equal-accuracy speedup**: at a brute-force-
verifiable tail point (p ~ 1e-4 delay exceedance at the sub-V_th
design's 0.25 V operating point) the mean-shift QMC-IS estimator must
beat plain batched Monte Carlo by >= 100x wall-clock at matched
confidence-interval width — while agreeing with it inside both 95 %
intervals (unbiasedness is checked, not assumed).  The matched-width
brute run is a few-second bench; set ``REPRO_BENCH_QUICK=1`` (the CI
quick mode) to replace it with a smaller, unmatched brute run and skip
the speedup gate.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.experiments import run_experiment
from repro.experiments.families import sub_vth_family
from repro.variability import (
    estimate_failure_probability,
    failure_indicator,
    find_failure_shift,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The brute-force-verifiable agreement point: a 1.3x timing window at
#: the sub-V_th design's nominal supply sits at p ~ 2.5e-4.
AGREE_VDD = 0.25
AGREE_SLOWDOWN = 1.3
IS_TRIALS = 2048

#: Wall-clock gate of the equal-accuracy comparison.
SPEEDUP_GATE = 100.0


def _agreement_indicator():
    inv = sub_vth_family().design("32nm").inverter(AGREE_VDD)
    return failure_indicator(inv, mode="delay", slowdown=AGREE_SLOWDOWN)


def _full_is_pipeline(indicator):
    """Shift search + estimation — everything brute force doesn't need."""
    return estimate_failure_probability(indicator, method="qmc-is",
                                        n_trials=IS_TRIALS)


def _next_pow2(n: float) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def test_bench_yield_qmc_is(benchmark):
    """The full 2048-trial QMC-IS pipeline, shift search included."""
    indicator = _agreement_indicator()
    est = run_once(benchmark, _full_is_pipeline, indicator)
    benchmark.extra_info["p_fail"] = est.p_fail
    benchmark.extra_info["rel_err"] = est.rel_err
    benchmark.extra_info["sigma"] = est.sigma
    benchmark.extra_info["ess"] = est.ess
    assert 0.0 < est.p_fail < 1e-3
    assert est.rel_err < 0.10


def test_bench_yield_shift_search(benchmark):
    """Batched minimum-norm failure-point search alone."""
    indicator = _agreement_indicator()
    shift = run_once(benchmark, find_failure_shift, indicator)
    benchmark.extra_info["beta_sigma"] = shift.beta_sigma
    benchmark.extra_info["n_probes"] = shift.n_probes
    assert 3.0 < shift.beta_sigma < 4.0


def test_bench_yield_equal_accuracy_speedup(benchmark):
    """Matched-CI-width brute force vs the QMC-IS pipeline.

    The bench times the composite so the recorded number is the whole
    comparison; the split timings, trial counts and the measured
    speedup ride along in ``extra_info``.  Quick mode shrinks the
    brute run (then the widths are no longer matched, so the >= 100x
    gate only applies to the full run).
    """
    indicator = _agreement_indicator()

    facts: dict[str, float] = {}

    def composite():
        start = time.perf_counter()
        est = _full_is_pipeline(indicator)
        t_is = time.perf_counter() - start
        # Plain-MC trials needed to match the IS CI width:
        # N = (1 - p) / (p rel^2), rounded up to a Sobol'-friendly
        # power of two.
        matched = _next_pow2(
            (1.0 - est.p_fail) / (est.p_fail * est.rel_err ** 2))
        n_brute = 1 << 18 if QUICK else matched
        start = time.perf_counter()
        brute = estimate_failure_probability(indicator, method="mc",
                                             n_trials=n_brute)
        t_brute = time.perf_counter() - start
        facts.update(
            t_is_s=t_is, t_brute_s=t_brute,
            speedup=t_brute / t_is,
            is_trials=est.n_trials, brute_trials=n_brute,
            matched_trials=matched,
            trial_compression=matched / est.n_trials,
            p_is=est.p_fail, p_brute=brute.p_fail,
            rel_is=est.rel_err, rel_brute=brute.rel_err,
        )
        return est, brute

    est, brute = run_once(benchmark, composite)
    benchmark.extra_info.update(
        {k: round(v, 6) if isinstance(v, float) else v
         for k, v in facts.items()})
    # Unbiasedness: the two 95 % intervals overlap.
    assert est.agrees_with(brute)
    if not QUICK:
        assert facts["speedup"] >= SPEEDUP_GATE


def test_bench_ext_yield(benchmark):
    """The provenance-tracked experiment end to end."""
    result = run_once(benchmark, run_experiment, "ext_yield")
    assert result.all_hold()
    sub_curve = result.get_series("delay-exceedance sigma, sub-vth")
    assert sub_curve.y[0] > 4.0
