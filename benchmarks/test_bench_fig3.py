"""Bench: Fig. 3 — NFET on-current vs node (nominal and 250 mV).

Shape (paper): leakage-constrained scaling loses drive current, and
loses it faster in the sub-V_th regime.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig3(benchmark):
    result = run_once(benchmark, run_experiment, "fig3")
    assert result.all_hold()
    nominal = result.get_series("Ion @nominal Vdd")
    sub = result.get_series("Ion @250mV")
    assert nominal.total_change() < 0.0
    assert sub.total_change() < nominal.total_change()
