"""Bench: Fig. 4 — inverter SNM vs node under super-V_th scaling.

Shape (paper): >10% SNM loss at 250 mV between the 90nm and 32nm nodes,
monotone across nodes.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig4(benchmark):
    result = run_once(benchmark, run_experiment, "fig4")
    assert result.all_hold()
    sub = result.get_series("SNM @250mV")
    assert sub.total_change() < -0.10
