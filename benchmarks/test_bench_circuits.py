"""Benches: the vectorised circuit-evaluation layer.

Batched VTC/SNM extraction and array-native Monte Carlo, each paired
with its sequential (scalar-oracle) counterpart so ``BENCH_circuits.json``
records the before/after of the vectorisation.  The sequential Monte
Carlo oracles are the slow half; set ``REPRO_BENCH_QUICK=1`` (the CI
quick mode) to skip them.
"""

import os

import pytest
from conftest import run_once

from repro.circuit import Inverter, butterfly_snm, find_vmin, noise_margins
from repro.device import nfet, pfet
from repro.variability import delay_distribution, snm_distribution

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
slow = pytest.mark.skipif(
    QUICK, reason="sequential oracle skipped in quick mode")


def _build_inverter(vdd=0.25):
    return Inverter(
        nfet=nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                  n_p_halo_cm3=1.5e18),
        pfet=pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                  n_p_halo_cm3=1.5e18, width_um=2.0),
        vdd=vdd,
    )


def test_bench_vtc_batch(benchmark):
    inv = _build_inverter()
    vins, vouts = run_once(benchmark, inv.vtc, 121)
    assert vouts[0] > vouts[-1]


def test_bench_vtc_sequential(benchmark):
    inv = _build_inverter()
    vins, vouts = run_once(benchmark, inv.vtc, 121, "sequential")
    assert vouts[0] > vouts[-1]


def test_bench_snm_batch(benchmark):
    inv = _build_inverter()
    nm = run_once(benchmark, noise_margins, inv)
    assert nm.snm > 0.0


def test_bench_snm_sequential(benchmark):
    inv = _build_inverter()
    nm = run_once(benchmark, noise_margins, inv, "sequential")
    assert nm.snm > 0.0


def test_bench_snm_mc100_batch(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, snm_distribution, inv, 100)
    assert mc.mean > 0.0


@slow
def test_bench_snm_mc100_sequential(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, snm_distribution, inv, 100,
                  solver="sequential")
    assert mc.mean > 0.0


def test_bench_delay_mc200_batch(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, delay_distribution, inv, 200)
    assert mc.mean > 0.0


@slow
def test_bench_delay_mc200_sequential(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, delay_distribution, inv, 200,
                  solver="sequential")
    assert mc.mean > 0.0


def test_bench_butterfly_batch(benchmark):
    inv = _build_inverter()
    vtc = inv.vtc(161)
    snm = run_once(benchmark, butterfly_snm, vtc)
    assert snm > 0.0


def test_bench_vmin_batch(benchmark):
    inv = _build_inverter(vdd=0.3)
    result = run_once(benchmark, find_vmin, inv)
    assert 0.08 < result.vmin < 0.7
