"""Benches: the vectorised circuit-evaluation layer.

Batched VTC/SNM extraction and array-native Monte Carlo, each paired
with its sequential (scalar-oracle) counterpart so ``BENCH_circuits.json``
records the before/after of the vectorisation.  The sequential Monte
Carlo oracles are the slow half; set ``REPRO_BENCH_QUICK=1`` (the CI
quick mode) to skip them.
"""

import os

import numpy as np
import pytest
from conftest import run_once

from repro import perf
from repro.circuit import Inverter, butterfly_snm, find_vmin, noise_margins
from repro.circuit.chain import InverterChain
from repro.circuit.dvs import (chain_rate_hz, vdd_for_throughput,
                               vdd_for_throughput_batch)
from repro.device import nfet, pfet
from repro.device.corners import Corner, at_corner, corner_grid
from repro.variability import delay_distribution, snm_distribution

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
slow = pytest.mark.skipif(
    QUICK, reason="sequential oracle skipped in quick mode")


def _build_inverter(vdd=0.25):
    return Inverter(
        nfet=nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                  n_p_halo_cm3=1.5e18),
        pfet=pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                  n_p_halo_cm3=1.5e18, width_um=2.0),
        vdd=vdd,
    )


def test_bench_vtc_batch(benchmark):
    inv = _build_inverter()
    vins, vouts = run_once(benchmark, inv.vtc, 121)
    assert vouts[0] > vouts[-1]


def test_bench_vtc_sequential(benchmark):
    inv = _build_inverter()
    vins, vouts = run_once(benchmark, inv.vtc, 121, "sequential")
    assert vouts[0] > vouts[-1]


def test_bench_snm_batch(benchmark):
    inv = _build_inverter()
    nm = run_once(benchmark, noise_margins, inv)
    assert nm.snm > 0.0


def test_bench_snm_sequential(benchmark):
    inv = _build_inverter()
    nm = run_once(benchmark, noise_margins, inv, "sequential")
    assert nm.snm > 0.0


def test_bench_snm_mc100_batch(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, snm_distribution, inv, 100)
    assert mc.mean > 0.0


@slow
def test_bench_snm_mc100_sequential(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, snm_distribution, inv, 100,
                  solver="sequential")
    assert mc.mean > 0.0


def test_bench_delay_mc200_batch(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, delay_distribution, inv, 200)
    assert mc.mean > 0.0


@slow
def test_bench_delay_mc200_sequential(benchmark):
    inv = _build_inverter()
    mc = run_once(benchmark, delay_distribution, inv, 200,
                  solver="sequential")
    assert mc.mean > 0.0


# -- tail-heavy DVS supply solve --------------------------------------------
#
# A skewed throughput grid: most lanes are already met at the bottom of
# the supply range and retire before the first sweep, while a geometric
# tail climbs towards the chain's maximum rate and bisects to full
# depth.  The gathered solver only ever evaluates the live tail; the
# paired sequential oracle records the before/after, and the batched
# result is bitwise-identical to the scalar one (both walk the same
# bracket sequence and return its hi end).


def _dvs_chain():
    return InverterChain(_build_inverter(vdd=0.3))


def _tail_targets(chain):
    f_lo = chain_rate_hz(chain, 0.10)
    f_hi = chain_rate_hz(chain, 1.2)
    return np.concatenate([
        np.full(96, 0.5 * f_lo),
        f_lo * np.geomspace(1.5, 0.9 * f_hi / f_lo, 32),
    ])


def test_bench_dvs_tail_batch(benchmark):
    chain = _dvs_chain()
    targets = _tail_targets(chain)
    before = perf.snapshot()
    vdds = run_once(benchmark, vdd_for_throughput_batch, chain, targets)
    assert vdds.shape == targets.shape
    moved = perf.delta(before)
    total = moved.get("numerics.total_lanes", 0)
    assert total > 0
    benchmark.extra_info["active_lane_fraction"] = round(
        moved.get("numerics.active_lanes", 0) / total, 4)


def test_bench_dvs_tail_sequential(benchmark):
    chain = _dvs_chain()
    targets = _tail_targets(chain)

    def sweep():
        return np.array([vdd_for_throughput(chain, float(f))
                         for f in targets])

    seq = run_once(benchmark, sweep)
    batch = vdd_for_throughput_batch(chain, targets)
    assert np.array_equal(batch, seq)
    benchmark.extra_info["max_abs_diff_vs_batch"] = float(
        np.max(np.abs(batch - seq)))


# -- skewed-corner device stack ---------------------------------------------
#
# One ParameterStack metrics pass over a gate-length sweep crossed with
# the FF/TT/SS corner set, against the per-device ``at_corner`` loop it
# replaced in the corner experiments.

CORNER_LENGTHS_NM = np.linspace(38.0, 60.0, 12)
ALL_CORNERS = (Corner.FF, Corner.TT, Corner.SS)


def _corner_devices():
    return [nfet(l_poly_nm=float(l), t_ox_nm=1.7, n_sub_cm3=2.4e18,
                 n_p_halo_cm3=1.4e18) for l in CORNER_LENGTHS_NM]


def test_bench_corner_stack_batch(benchmark):
    devices = _corner_devices()

    def sweep():
        return corner_grid(devices, ALL_CORNERS).i_on_per_um(0.25)

    ion = run_once(benchmark, sweep)
    assert ion.shape == (len(devices) * len(ALL_CORNERS),)


def test_bench_corner_stack_sequential(benchmark):
    devices = _corner_devices()

    def sweep():
        return np.array([at_corner(d, c).i_on_per_um(0.25)
                         for d in devices for c in ALL_CORNERS])

    seq = run_once(benchmark, sweep)
    batch = corner_grid(devices, ALL_CORNERS).i_on_per_um(0.25)
    rel = float(np.max(np.abs(batch / seq - 1.0)))
    assert rel <= 1e-9
    benchmark.extra_info["max_rel_diff_vs_batch"] = rel


def test_bench_butterfly_batch(benchmark):
    inv = _build_inverter()
    vtc = inv.vtc(161)
    snm = run_once(benchmark, butterfly_snm, vtc)
    assert snm > 0.0


def test_bench_vmin_batch(benchmark):
    inv = _build_inverter(vdd=0.3)
    result = run_once(benchmark, find_vmin, inv)
    assert 0.08 < result.vmin < 0.7
