"""Shared fixtures.

Device families are expensive to optimise, so they are built once per
session through the same lru-cached path the experiments use.
"""

from __future__ import annotations

import pytest

from repro.circuit import Inverter
from repro.device import nfet, pfet
from repro.experiments.families import sub_vth_family, super_vth_family
from repro.service import (GridSpec, build_grid, fit_surrogate,
                           validate_surrogate)


@pytest.fixture(scope="session")
def nfet90():
    """A 90nm-class NFET with a representative halo."""
    return nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


@pytest.fixture(scope="session")
def pfet90():
    """The matching 90nm-class PFET (2 µm wide)."""
    return pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18, width_um=2.0)


@pytest.fixture(scope="session")
def inverter_sub(nfet90, pfet90):
    """A sub-V_th inverter at 250 mV."""
    return Inverter(nfet=nfet90, pfet=pfet90, vdd=0.25)


@pytest.fixture(scope="session")
def inverter_nominal(nfet90, pfet90):
    """A nominal-supply inverter at 1.2 V."""
    return Inverter(nfet=nfet90, pfet=pfet90, vdd=1.2)


@pytest.fixture(scope="session")
def super_family():
    """The cached Table 2 family."""
    return super_vth_family()


@pytest.fixture(scope="session")
def sub_family():
    """The cached Table 3 family."""
    return sub_vth_family()


@pytest.fixture(scope="session")
def service_spec():
    """A single-node design-space window at serving density: every
    axis has >= 4 points, so the pchip densify pass engages and the
    surrogate meets SURROGATE_TOL_REL (as on the full serving grids),
    while staying cheap enough to fill inside the test session."""
    return GridSpec(
        nodes=("65nm",),
        l_ratios=tuple(round(1.5 + 0.05 * i, 4) for i in range(11)),
        log10_ioff=(-10.6, -10.4, -10.2, -10.0),
        vdd_v=(0.24, 0.26, 0.28, 0.30, 0.32),
    )


@pytest.fixture(scope="session")
def service_grid(service_spec):
    """The filled metric tensors for the service test window."""
    return build_grid(service_spec)


@pytest.fixture(scope="session")
def service_surrogate(service_grid):
    """Fitted + validated surrogate (error bounds attached)."""
    surrogate = fit_surrogate(service_grid)
    validate_surrogate(surrogate, max_points_per_node=12)
    return surrogate
