"""Tests for the ``repro report`` provenance/docs pipeline."""

import json

import pytest

from repro.cli import main

IDS = ["table1", "eq3"]


@pytest.fixture()
def generated(tmp_path):
    """A tmp repo root with freshly generated docs for two experiments."""
    assert main(["report", "--root", str(tmp_path), "--only", *IDS]) == 0
    return tmp_path


class TestReportWrite:
    def test_writes_all_artifacts(self, generated):
        assert (generated / "EXPERIMENTS.md").exists()
        assert (generated / "docs" / "RESULTS.md").exists()
        assert (generated / "results.json").exists()
        assert (generated / ".repro" / "manifest.jsonl").exists()

    def test_experiments_md_contents(self, generated):
        text = (generated / "EXPERIMENTS.md").read_text()
        assert "## table1 — Generalized scaling rules (Table 1)" in text
        assert "| claim | paper | measured | status | note |" in text
        assert "claims hold" in text

    def test_results_md_has_figures_and_provenance(self, generated):
        text = (generated / "docs" / "RESULTS.md").read_text()
        assert "```text" in text                      # ASCII figure fence
        assert "*Provenance: model schema `" in text
        assert "## eq3" in text

    def test_results_json_records_provenance(self, generated):
        payload = json.loads((generated / "results.json").read_text())
        assert sorted(payload["experiments"]) == sorted(IDS)
        for entry in payload["experiments"].values():
            assert "perf_counters" in entry
            assert entry["wall_time_s"] >= 0.0
        assert payload["schema_hash"]
        from repro.cache import model_schema_hash
        assert payload["schema_hash"] == model_schema_hash()

    def test_deterministic_output(self, generated):
        first = (generated / "EXPERIMENTS.md").read_text()
        first_results = (generated / "docs" / "RESULTS.md").read_text()
        assert main(["report", "--root", str(generated),
                     "--only", *IDS]) == 0
        assert (generated / "EXPERIMENTS.md").read_text() == first
        assert (generated / "docs" / "RESULTS.md").read_text() \
            == first_results

    def test_manifest_jsonl_round_trip(self, generated):
        from repro.analysis.manifest import RunManifest
        records = RunManifest.read_jsonl(
            generated / ".repro" / "manifest.jsonl")
        assert [r.experiment_id for r in records] == IDS
        assert all(r.schema_hash for r in records)

    def test_unknown_id_exits_2(self, tmp_path, capsys):
        assert main(["report", "--root", str(tmp_path),
                     "--only", "fig99"]) == 2
        assert "unknown experiment 'fig99'" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, tmp_path, capsys):
        assert main(["report", "--root", str(tmp_path),
                     "--only", "table1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_custom_manifest_path(self, tmp_path):
        trace = tmp_path / "custom" / "trace.jsonl"
        assert main(["report", "--root", str(tmp_path),
                     "--only", "table1",
                     "--manifest", str(trace)]) == 0
        assert trace.exists()


class TestReportCheck:
    def test_fresh_docs_pass(self, generated, capsys):
        assert main(["report", "--root", str(generated),
                     "--only", *IDS, "--check"]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_stale_experiments_md_fails(self, generated, capsys):
        target = generated / "EXPERIMENTS.md"
        target.write_text(target.read_text() + "\nhand edit\n")
        assert main(["report", "--root", str(generated),
                     "--only", *IDS, "--check"]) == 2
        assert "stale: EXPERIMENTS.md" in capsys.readouterr().err

    def test_missing_results_md_fails(self, generated, capsys):
        (generated / "docs" / "RESULTS.md").unlink()
        assert main(["report", "--root", str(generated),
                     "--only", *IDS, "--check"]) == 2
        assert "stale: docs/RESULTS.md" in capsys.readouterr().err

    def test_missing_results_json_fails(self, generated, capsys):
        (generated / "results.json").unlink()
        assert main(["report", "--root", str(generated),
                     "--only", *IDS, "--check"]) == 2
        assert "results.json: missing" in capsys.readouterr().err

    def test_results_json_missing_id_fails(self, generated, capsys):
        path = generated / "results.json"
        payload = json.loads(path.read_text())
        del payload["experiments"]["eq3"]
        path.write_text(json.dumps(payload))
        assert main(["report", "--root", str(generated),
                     "--only", *IDS, "--check"]) == 2
        assert "no entry for 'eq3'" in capsys.readouterr().err

    def test_results_json_stale_schema_hash_fails(self, generated, capsys):
        path = generated / "results.json"
        payload = json.loads(path.read_text())
        payload["schema_hash"] = "0000000000000000"
        path.write_text(json.dumps(payload))
        assert main(["report", "--root", str(generated),
                     "--only", *IDS, "--check"]) == 2
        assert "schema hash" in capsys.readouterr().err

    def test_check_does_not_write(self, tmp_path):
        assert main(["report", "--root", str(tmp_path),
                     "--only", "table1", "--check"]) == 2
        assert not (tmp_path / "EXPERIMENTS.md").exists()
        assert not (tmp_path / "results.json").exists()


class TestReportParallel:
    def test_jobs_output_matches_sequential(self, generated, tmp_path_factory):
        other = tmp_path_factory.mktemp("parallel")
        assert main(["report", "--root", str(other),
                     "--only", *IDS, "--jobs", "2"]) == 0
        assert (other / "EXPERIMENTS.md").read_text() \
            == (generated / "EXPERIMENTS.md").read_text()
        assert (other / "docs" / "RESULTS.md").read_text() \
            == (generated / "docs" / "RESULTS.md").read_text()
