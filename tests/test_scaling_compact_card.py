"""Tests for the model-card extraction."""

import pytest

from repro.errors import ParameterError
from repro.scaling.compact_card import (
    design_cards,
    extract_card,
    family_card_table,
)


class TestExtractCard:
    def test_fields_consistent_with_device(self, nfet90):
        card = extract_card(nfet90, 1.2, "n90")
        assert card.ss_mv_per_dec == pytest.approx(nfet90.ss_mv_per_dec)
        assert card.ioff_a_per_um == pytest.approx(nfet90.i_off_per_um(1.2))
        assert card.l_poly_nm == pytest.approx(65.0)

    def test_dibl_consistent(self, nfet90):
        card = extract_card(nfet90, 1.2)
        assert card.dibl_mv_per_v == pytest.approx(
            nfet90.threshold.dibl_mv_per_v(1.2, 0.05))

    def test_vth_ordering(self, nfet90):
        card = extract_card(nfet90, 1.2)
        assert card.vth_sat_v < card.vth_lin_v

    def test_per_um_normalisation(self, pfet90):
        card = extract_card(pfet90, 1.2)
        assert card.c_gate_f_per_um == pytest.approx(
            pfet90.capacitance.c_gate / 2.0)

    def test_as_dict_round(self, nfet90):
        card = extract_card(nfet90, 1.2, "n90")
        d = card.as_dict()
        assert d["label"] == "n90"
        assert d["ss_mv_per_dec"] == card.ss_mv_per_dec

    def test_render_contains_parameters(self, nfet90):
        text = extract_card(nfet90, 1.2, "n90").render()
        for token in ("V_th,sat", "S_S", "I_off", "model card: n90"):
            assert token in text

    def test_rejects_bad_vdd(self, nfet90):
        with pytest.raises(ParameterError):
            extract_card(nfet90, 0.0)


class TestDesignAndFamilyCards:
    def test_design_cards_pair(self, super_family):
        n_card, p_card = design_cards(super_family.designs[0])
        assert n_card.polarity == "nfet"
        assert p_card.polarity == "pfet"
        assert "90nm" in n_card.label

    def test_family_table_has_all_nodes(self, super_family):
        text = family_card_table(super_family)
        for node in ("90nm", "65nm", "45nm", "32nm"):
            assert node in text

    def test_family_table_strategy_label(self, sub_family):
        assert "sub-vth" in family_card_table(sub_family)
