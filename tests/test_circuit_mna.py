"""Tests for the nodal DC/transient solver."""

import numpy as np
import pytest

from repro.circuit import Inverter
from repro.circuit.mna import NodalSolver
from repro.circuit.netlist import Circuit
from repro.errors import ParameterError

VDD = 0.25


def inverter_circuit(nfet90, pfet90, vin: float, vdd: float = VDD) -> Circuit:
    c = Circuit()
    c.add_vsource("vdd", "vdd", vdd)
    c.add_vsource("vin", "in", vin)
    c.add_inverter("inv1", "in", "out", "vdd", nfet90, pfet90)
    return c


class TestDcLinear:
    def test_resistor_divider(self):
        c = Circuit()
        c.add_vsource("vs", "top", 1.0)
        c.add_resistor("r1", "top", "mid", 1e3)
        c.add_resistor("r2", "mid", "0", 3e3)
        result = NodalSolver(c).solve_dc()
        assert result["mid"] == pytest.approx(0.75, abs=1e-6)

    def test_three_node_ladder(self):
        c = Circuit()
        c.add_vsource("vs", "a", 2.0)
        c.add_resistor("r1", "a", "b", 1e3)
        c.add_resistor("r2", "b", "c", 1e3)
        c.add_resistor("r3", "c", "0", 2e3)
        result = NodalSolver(c).solve_dc()
        assert result["b"] == pytest.approx(1.5, abs=1e-6)
        assert result["c"] == pytest.approx(1.0, abs=1e-6)


class TestDcInverter:
    @pytest.mark.parametrize("vin", [0.0, 0.08, 0.125, 0.18, 0.25])
    def test_matches_specialized_solver(self, nfet90, pfet90, vin):
        circuit = inverter_circuit(nfet90, pfet90, vin)
        mna = NodalSolver(circuit).solve_dc()
        reference = Inverter(nfet90, pfet90, VDD).vtc_point(vin)
        assert mna["out"] == pytest.approx(reference, abs=1e-4)

    def test_two_stage_buffer(self, nfet90, pfet90):
        c = Circuit()
        c.add_vsource("vdd", "vdd", VDD)
        c.add_vsource("vin", "in", 0.0)
        c.add_inverter("i1", "in", "mid", "vdd", nfet90, pfet90)
        c.add_inverter("i2", "mid", "out", "vdd", nfet90, pfet90)
        result = NodalSolver(c).solve_dc()
        assert result["mid"] > 0.9 * VDD
        assert result["out"] < 0.1 * VDD


class TestBistability:
    def test_sram_latch_two_states(self, nfet90, pfet90):
        c = Circuit()
        c.add_vsource("vdd", "vdd", VDD)
        c.add_inverter("i1", "q", "qb", "vdd", nfet90, pfet90)
        c.add_inverter("i2", "qb", "q", "vdd", nfet90, pfet90)
        solver = NodalSolver(c)
        st0 = solver.solve_dc(initial={"q": 0.0, "qb": VDD})
        st1 = solver.solve_dc(initial={"q": VDD, "qb": 0.0})
        assert st0["q"] < 0.05 * VDD and st0["qb"] > 0.95 * VDD
        assert st1["q"] > 0.95 * VDD and st1["qb"] < 0.05 * VDD


class TestTransient:
    def test_rc_charging_matches_analytic(self):
        c = Circuit()
        c.add_vsource("vs", "a", 1.0)
        c.add_resistor("r1", "a", "b", 1e6)
        c.add_capacitor("c1", "b", "0", 1e-12)
        result = NodalSolver(c).solve_transient(
            5e-6, 2e-8, initial={"b": 0.0}, use_initial_conditions=True)
        tau = 1e-6
        for t_probe in (0.5 * tau, tau, 2.0 * tau):
            expected = 1.0 - np.exp(-t_probe / tau)
            assert result.at("b", t_probe) == pytest.approx(expected,
                                                            abs=0.02)

    def test_inverter_switching_delay_close_to_ode_engine(self, nfet90,
                                                          pfet90):
        from repro.circuit.transient import switch_event
        inv = Inverter(nfet90, pfet90, VDD)
        c_load = 2e-15
        reference = switch_event(inv, c_load, falling=True).delay_s

        c = Circuit()
        c.add_vsource("vdd", "vdd", VDD)
        c.add_vsource("vin", "in", VDD)     # input already stepped high
        c.add_inverter("i1", "in", "out", "vdd", nfet90, pfet90)
        c.add_capacitor("cl", "out", "0", c_load)
        result = NodalSolver(c).solve_transient(
            10.0 * reference, reference / 10.0,
            initial={"out": VDD}, use_initial_conditions=True)
        crossing = result.crossing_time("out", VDD / 2.0, rising=False)
        assert crossing == pytest.approx(reference, rel=0.15)

    def test_ring_oscillator_oscillates(self, nfet90, pfet90):
        c = Circuit()
        c.add_vsource("vdd", "vdd", VDD)
        nodes = ["n1", "n2", "n3"]
        for i in range(3):
            c.add_inverter(f"i{i}", nodes[i], nodes[(i + 1) % 3], "vdd",
                           nfet90, pfet90)
            c.add_capacitor(f"cl{i}", nodes[(i + 1) % 3], "0", 2e-15)
        result = NodalSolver(c).solve_transient(
            4e-7, 2e-9, initial={"n1": 0.0, "n2": VDD, "n3": 0.0},
            use_initial_conditions=True)
        wave = result.voltages["n1"]
        above = wave >= VDD / 2.0
        rising_edges = int(np.sum(~above[:-1] & above[1:]))
        assert rising_edges >= 3

    def test_crossing_time_validation(self):
        c = Circuit()
        c.add_vsource("vs", "a", 1.0)
        c.add_resistor("r1", "a", "b", 1e3)
        c.add_capacitor("c1", "b", "0", 1e-15)
        result = NodalSolver(c).solve_transient(1e-10, 1e-12)
        with pytest.raises(ParameterError):
            result.crossing_time("b", 5.0)

    def test_rejects_bad_horizon(self, nfet90, pfet90):
        c = inverter_circuit(nfet90, pfet90, 0.0)
        with pytest.raises(ParameterError):
            NodalSolver(c).solve_transient(0.0, 1e-9)


class TestCrossingTimeEdges:
    """Edge semantics of :meth:`TransientResult.crossing_time`."""

    @staticmethod
    def _result(values):
        from repro.circuit.mna import TransientResult
        wave = np.asarray(values, dtype=float)
        return TransientResult(time_s=np.arange(wave.size, dtype=float),
                               voltages={"n": wave})

    def test_never_crossed_raises(self):
        result = self._result([0.0, 0.1, 0.2])
        with pytest.raises(ParameterError):
            result.crossing_time("n", 0.5)

    def test_constant_exactly_at_level_raises(self):
        result = self._result([0.5, 0.5, 0.5])
        with pytest.raises(ParameterError):
            result.crossing_time("n", 0.5)

    def test_starts_at_level_departing_up_is_t0(self):
        result = self._result([0.5, 0.8, 0.9])
        assert result.crossing_time("n", 0.5) == 0.0
        assert result.crossing_time("n", 0.5, rising=True) == 0.0

    def test_starts_at_level_wrong_direction_finds_later_crossing(self):
        # Departs upward, so the *falling* crossing is the later 0.8->0.2
        # segment, not t = 0.
        result = self._result([0.5, 0.8, 0.2])
        t_fall = result.crossing_time("n", 0.5, rising=False)
        assert t_fall == pytest.approx(1.5)

    def test_flat_start_at_level_still_t0(self):
        # A plateau exactly at the level, then departure: the plateau's
        # start is the crossing.
        result = self._result([0.5, 0.5, 0.9])
        assert result.crossing_time("n", 0.5, rising=True) == 0.0

    def test_non_monotonic_takes_first_matching_crossing(self):
        result = self._result([0.0, 0.8, 0.1, 0.9])
        t_rise = result.crossing_time("n", 0.5, rising=True)
        t_fall = result.crossing_time("n", 0.5, rising=False)
        t_any = result.crossing_time("n", 0.5)
        assert t_rise == pytest.approx(0.625)
        assert t_fall == pytest.approx(1.0 + 0.3 / 0.7)
        assert t_any == t_rise
        # The second rising crossing (0.1 -> 0.9) is not the answer.
        assert t_rise < 2.0
