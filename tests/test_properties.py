"""Property-based tests (hypothesis) on core models and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import nm_to_cm, thermal_voltage
from repro.device import nfet
from repro.device.doping import DopingProfile, HaloImplant
from repro.device.electrostatics import depletion_width, slope_factor
from repro.device.subthreshold import (
    inverse_subthreshold_slope,
    short_channel_slope_degradation,
    subthreshold_current,
)
from repro.materials.mobility import masetti_mobility
from repro.materials.oxide import sio2
from repro.materials.silicon import fermi_potential, intrinsic_concentration
from repro.scaling.generalized import GeneralizedScaling
from repro.units import format_quantity, parse_quantity

# Strategy helpers -----------------------------------------------------------

dopings = st.floats(min_value=1e16, max_value=5e19)
oxide_nm = st.floats(min_value=0.8, max_value=5.0)
lengths_nm = st.floats(min_value=10.0, max_value=500.0)
voltages = st.floats(min_value=0.0, max_value=1.5)


class TestMaterialProperties:
    @given(n=dopings)
    def test_fermi_potential_positive_and_bounded(self, n):
        phi = fermi_potential(n)
        assert 0.3 < phi < 0.62   # sub-bandgap for any realistic doping

    @given(n1=dopings, n2=dopings)
    def test_fermi_potential_monotone(self, n1, n2):
        if n1 * (1.0 + 1e-9) < n2:
            assert fermi_potential(n1) < fermi_potential(n2)

    @given(n=dopings)
    def test_mobility_positive(self, n):
        assert masetti_mobility(n) > 0.0

    @given(t=st.floats(min_value=250.0, max_value=400.0))
    def test_ni_monotone_in_temperature(self, t):
        assert intrinsic_concentration(t + 5.0) > intrinsic_concentration(t)


class TestElectrostaticsProperties:
    @given(n=dopings)
    def test_depletion_width_positive(self, n):
        assert depletion_width(n) > 0.0

    @given(n1=dopings, n2=dopings)
    def test_depletion_width_antitone(self, n1, n2):
        if n1 * (1.0 + 1e-9) < n2:
            assert depletion_width(n1) > depletion_width(n2)

    @given(n=dopings, t_ox=oxide_nm)
    def test_slope_factor_above_unity(self, n, t_ox):
        m = slope_factor(n, sio2(nm_to_cm(t_ox)))
        assert m > 1.0

    @given(n=dopings, t1=oxide_nm, t2=oxide_nm)
    def test_slope_factor_monotone_in_tox(self, n, t1, t2):
        if t1 * (1.0 + 1e-9) < t2:
            assert (slope_factor(n, sio2(nm_to_cm(t1)))
                    < slope_factor(n, sio2(nm_to_cm(t2))))


class TestSubthresholdProperties:
    @given(t_ox=oxide_nm, w_dep=st.floats(min_value=3.0, max_value=100.0),
           l_eff=lengths_nm)
    def test_ss_above_thermal_limit(self, t_ox, w_dep, l_eff):
        ss = inverse_subthreshold_slope(
            sio2(nm_to_cm(t_ox)), nm_to_cm(w_dep), nm_to_cm(l_eff))
        assert ss > math.log(10.0) * thermal_voltage()

    @given(t_ox=oxide_nm, w_dep=st.floats(min_value=3.0, max_value=100.0),
           l1=lengths_nm, l2=lengths_nm)
    def test_ss_degradation_antitone_in_length(self, t_ox, w_dep, l1, l2):
        if l1 < l2:
            f1 = short_channel_slope_degradation(
                nm_to_cm(t_ox), nm_to_cm(w_dep), nm_to_cm(l1))
            f2 = short_channel_slope_degradation(
                nm_to_cm(t_ox), nm_to_cm(w_dep), nm_to_cm(l2))
            assert f1 >= f2

    @given(vgs1=voltages, vgs2=voltages, vds=st.floats(min_value=0.01,
                                                       max_value=1.5))
    def test_current_monotone_in_vgs(self, vgs1, vgs2, vds):
        if vgs1 + 1e-9 < vgs2:
            i1 = subthreshold_current(1e-6, vgs1, vds, 0.4, 1.3)
            i2 = subthreshold_current(1e-6, vgs2, vds, 0.4, 1.3)
            assert i1 < i2


class TestDopingProfileProperties:
    @settings(max_examples=30)
    @given(n_sub=st.floats(min_value=5e17, max_value=5e18),
           peak=st.floats(min_value=1e17, max_value=2e19),
           l_eff=lengths_nm)
    def test_effective_doping_bounds(self, n_sub, peak, l_eff):
        halo = HaloImplant(peak_cm3=peak, sigma_x_cm=nm_to_cm(10.0),
                           sigma_y_cm=nm_to_cm(12.0), depth_cm=nm_to_cm(15.0))
        profile = DopingProfile(n_sub_cm3=n_sub, halo=halo)
        n_eff = profile.effective_channel_doping(nm_to_cm(l_eff))
        assert n_sub <= n_eff <= n_sub + 2.0 * peak + 1e12

    @settings(max_examples=20)
    @given(l1=lengths_nm, l2=lengths_nm)
    def test_effective_doping_antitone_in_length(self, l1, l2):
        halo = HaloImplant(peak_cm3=2e18, sigma_x_cm=nm_to_cm(10.0),
                           sigma_y_cm=nm_to_cm(12.0), depth_cm=nm_to_cm(15.0))
        profile = DopingProfile(n_sub_cm3=1e18, halo=halo)
        if l1 < l2:
            assert (profile.effective_channel_doping(nm_to_cm(l1))
                    >= profile.effective_channel_doping(nm_to_cm(l2)))


class TestDeviceProperties:
    @settings(max_examples=15, deadline=None)
    @given(n_sub=st.floats(min_value=8e17, max_value=4e18),
           vdd=st.floats(min_value=0.2, max_value=1.2))
    def test_on_exceeds_off(self, n_sub, vdd):
        dev = nfet(65, 2.1, n_sub, 1.5e18)
        assert dev.i_on(vdd) > dev.i_off(vdd)

    @settings(max_examples=15, deadline=None)
    @given(vdd1=st.floats(min_value=0.2, max_value=1.2),
           vdd2=st.floats(min_value=0.2, max_value=1.2))
    def test_ion_monotone_in_vdd(self, vdd1, vdd2):
        dev = nfet(65, 2.1, 1.2e18, 1.5e18)
        if vdd1 < vdd2:
            assert dev.i_on(vdd1) < dev.i_on(vdd2)


class TestScalingAlgebraProperties:
    @given(alpha=st.floats(min_value=1.01, max_value=3.0),
           epsilon=st.floats(min_value=1.0, max_value=2.0))
    def test_field_consistency(self, alpha, epsilon):
        rule = GeneralizedScaling(alpha=alpha, epsilon=epsilon)
        assert rule.field_factor == pytest.approx(epsilon)

    @given(alpha=st.floats(min_value=1.01, max_value=2.0),
           epsilon=st.floats(min_value=1.0, max_value=1.5),
           gens=st.integers(min_value=1, max_value=4))
    def test_composition_associative(self, alpha, epsilon, gens):
        rule = GeneralizedScaling(alpha=alpha, epsilon=epsilon)
        assert rule.apply(gens).area_factor == pytest.approx(
            rule.area_factor ** gens)


class TestUnitsProperties:
    @given(value=st.floats(min_value=1e-14, max_value=1e6),
           )
    def test_format_parse_roundtrip(self, value):
        text = format_quantity(value, "X", digits=9)
        assert parse_quantity(text, "X") == pytest.approx(value, rel=1e-6)
