"""Tests for the generalized-scaling algebra (Table 1)."""

import pytest

from repro.errors import ParameterError
from repro.scaling.generalized import CONSTANT_FIELD, GeneralizedScaling


class TestFactors:
    def test_constant_field_special_case(self):
        # Dennard scaling: field factor exactly 1.
        assert CONSTANT_FIELD.field_factor == pytest.approx(1.0)

    def test_dimension_factor(self):
        rule = GeneralizedScaling(alpha=1.0 / 0.7)
        assert rule.dimension_factor == pytest.approx(0.7)

    def test_doping_factor(self):
        rule = GeneralizedScaling(alpha=2.0, epsilon=1.5)
        assert rule.doping_factor == pytest.approx(3.0)

    def test_voltage_factor(self):
        rule = GeneralizedScaling(alpha=2.0, epsilon=1.5)
        assert rule.voltage_factor == pytest.approx(0.75)

    def test_area_is_dimension_squared(self):
        rule = GeneralizedScaling(alpha=1.4, epsilon=1.1)
        assert rule.area_factor == pytest.approx(rule.dimension_factor ** 2)

    def test_power_is_voltage_squared_times_area_over_delay(self):
        # P = C V^2 f: C ~ 1/alpha, V ~ eps/alpha, f ~ alpha
        # -> P ~ eps^2/alpha^2.
        rule = GeneralizedScaling(alpha=1.4, epsilon=1.1)
        expected = ((1.0 / rule.alpha) * rule.voltage_factor ** 2
                    / rule.delay_factor)
        assert rule.power_factor == pytest.approx(expected)

    def test_field_factor_definition(self):
        rule = GeneralizedScaling(alpha=1.3, epsilon=1.2)
        assert rule.field_factor == pytest.approx(1.2)

    def test_table_complete(self):
        table = CONSTANT_FIELD.table()
        assert set(table) == {
            "physical_dimensions", "channel_doping", "vdd", "area",
            "delay", "power",
        }


class TestComposition:
    def test_two_generations(self):
        rule = GeneralizedScaling(alpha=1.4, epsilon=1.1)
        squared = rule.apply(2)
        assert squared.alpha == pytest.approx(1.4 ** 2)
        assert squared.epsilon == pytest.approx(1.1 ** 2)

    def test_composition_multiplies_factors(self):
        rule = GeneralizedScaling(alpha=1.4, epsilon=1.1)
        assert rule.apply(3).dimension_factor == pytest.approx(
            rule.dimension_factor ** 3)

    def test_rejects_zero_generations(self):
        with pytest.raises(ParameterError):
            CONSTANT_FIELD.apply(0)


class TestValidation:
    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ParameterError):
            GeneralizedScaling(alpha=0.0)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ParameterError):
            GeneralizedScaling(alpha=1.4, epsilon=-1.0)
