"""Tests for the sweep engine."""

import pytest

from repro.analysis.sweep import successful_values, sweep_1d, sweep_grid
from repro.errors import ParameterError


class TestSweep1d:
    def test_basic(self):
        points = sweep_1d(lambda x: x * x, [1.0, 2.0, 3.0])
        assert [p.value for p in points] == [1.0, 4.0, 9.0]
        assert all(p.ok for p in points)

    def test_failure_propagates_by_default(self):
        def bomb(x):
            raise ValueError("boom")
        with pytest.raises(ValueError):
            sweep_1d(bomb, [1.0])

    def test_tolerated_failures_recorded(self):
        def sometimes(x):
            if x > 2.0:
                raise ValueError("too big")
            return x
        points = sweep_1d(sometimes, [1.0, 3.0], tolerate_failures=True)
        assert points[0].ok
        assert not points[1].ok
        assert "too big" in points[1].error

    def test_successful_values_filter(self):
        def sometimes(x):
            if x > 2.0:
                raise ValueError("no")
            return x
        points = sweep_1d(sometimes, [1.0, 3.0, 2.0], tolerate_failures=True)
        assert successful_values(points) == [1.0, 2.0]

    def test_inputs_recorded(self):
        points = sweep_1d(lambda x: x, [7.5])
        assert points[0].inputs == (7.5,)


class TestSweepGrid:
    def test_cartesian(self):
        points = sweep_grid(lambda a, b: a * 10 + b,
                            {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        values = [p.value for p in points]
        assert values == [13.0, 14.0, 23.0, 24.0]

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError):
            sweep_grid(lambda: 0, {})

    def test_tolerates_failures(self):
        def picky(a, b):
            if a == b:
                raise ValueError("diag")
            return a - b
        points = sweep_grid(picky, {"a": [1.0, 2.0], "b": [1.0, 2.0]},
                            tolerate_failures=True)
        assert sum(1 for p in points if not p.ok) == 2
