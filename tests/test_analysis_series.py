"""Tests for the Series container."""

import numpy as np
import pytest

from repro.analysis import Series
from repro.errors import ParameterError


@pytest.fixture()
def series():
    return Series(label="s", x=np.array([90.0, 65.0, 45.0, 32.0]),
                  y=np.array([80.0, 84.0, 88.0, 92.0]),
                  x_label="node", y_label="ss")


class TestSeries:
    def test_total_change(self, series):
        assert series.total_change() == pytest.approx(0.15)

    def test_per_step_change(self, series):
        steps = series.per_step_change()
        assert len(steps) == 3
        assert steps[0] == pytest.approx(0.05)

    def test_normalized_default(self, series):
        norm = series.normalized()
        assert norm.y[0] == pytest.approx(1.0)

    def test_normalized_reference(self, series):
        norm = series.normalized(reference=40.0)
        assert norm.y[0] == pytest.approx(2.0)

    def test_normalized_rejects_zero(self, series):
        with pytest.raises(ParameterError):
            series.normalized(reference=0.0)

    def test_pearson_perfect(self, series):
        other = Series(label="2x", x=series.x, y=2.0 * series.y)
        assert series.pearson_r(other) == pytest.approx(1.0)

    def test_pearson_anticorrelated(self, series):
        other = Series(label="-x", x=series.x, y=-series.y)
        assert series.pearson_r(other) == pytest.approx(-1.0)

    def test_pearson_length_mismatch(self, series):
        other = Series(label="short", x=np.array([1.0, 2.0]),
                       y=np.array([1.0, 2.0]))
        with pytest.raises(ParameterError):
            series.pearson_r(other)

    def test_as_rows(self, series):
        rows = series.as_rows()
        assert rows[0] == (90.0, 80.0)
        assert len(rows) == 4

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ParameterError):
            Series(label="bad", x=np.array([1.0, 2.0]), y=np.array([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            Series(label="bad", x=np.array([]), y=np.array([]))
