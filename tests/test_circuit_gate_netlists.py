"""Behavioral tests for the transistor-level gate netlists."""

import numpy as np
import pytest

from repro.circuit.gate_netlists import (gate_delay, gate_leakage,
                                         mux2_netlist, nand2_netlist,
                                         nor2_netlist)
from repro.circuit.mna_batch import solve_dc_batch
from repro.errors import ParameterError

VDD = 0.25


def _logic_levels(gate, inputs):
    """DC output voltage per lane of ``inputs``."""
    result = solve_dc_batch(gate.circuit, stimulus=inputs)
    return np.asarray(result[gate.output])


class TestTruthTables:
    def test_nand2(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        a = np.array([0.0, 0.0, VDD, VDD])
        b = np.array([0.0, VDD, 0.0, VDD])
        y = _logic_levels(gate, {"a": a, "b": b})
        assert np.all(y[:3] > 0.9 * VDD)
        assert y[3] < 0.1 * VDD

    def test_nor2(self, nfet90, pfet90):
        gate = nor2_netlist(nfet90, pfet90, VDD)
        a = np.array([0.0, 0.0, VDD, VDD])
        b = np.array([0.0, VDD, 0.0, VDD])
        y = _logic_levels(gate, {"a": a, "b": b})
        assert y[0] > 0.9 * VDD
        assert np.all(y[1:] < 0.1 * VDD)

    def test_mux2_selects(self, nfet90, pfet90):
        gate = mux2_netlist(nfet90, pfet90, VDD)
        # sel = 0 -> y = d0, sel = 1 -> y = d1, for both data values.
        d0 = np.array([0.0, VDD, 0.0, VDD])
        d1 = np.array([VDD, 0.0, VDD, 0.0])
        sel = np.array([0.0, 0.0, VDD, VDD])
        y = _logic_levels(gate, {"d0": d0, "d1": d1, "sel": sel})
        want = np.array([0.0, VDD, VDD, 0.0])
        assert np.max(np.abs(y - want)) < 0.1 * VDD


class TestLeakage:
    def test_nand2_stacking_effect(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        a = np.array([0.0, 0.0, VDD])
        b = np.array([0.0, VDD, 0.0])
        i_leak = gate_leakage(gate, {"a": a, "b": b})
        both_low, only_a_low, only_b_low = i_leak
        # Two off devices in series leak less than either alone: the
        # stack node rises and reverse-biases the top device.
        assert both_low < only_a_low
        assert both_low < only_b_low

    def test_corner_broadcasting(self, nfet90, pfet90):
        gate = nor2_netlist(nfet90, pfet90, VDD)
        corners = np.array([-0.02, 0.0, 0.02])
        i_leak = gate_leakage(gate, {"a": VDD, "b": VDD},
                              dvth_p_v=corners)
        assert i_leak.shape == (3,)
        # NOR2 at 11 leaks through the PFET stack; a lower |Vth,p|
        # corner (more negative shift strengthens the PFET) leaks more.
        assert i_leak[0] > i_leak[2]

    def test_rejects_unknown_pin(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        with pytest.raises(ParameterError):
            gate_leakage(gate, {"z": 0.0})


class TestDelay:
    def test_controlling_edge_has_finite_delay(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        delay = gate_delay(gate, "b", held={"a": VDD}, n_steps=64)
        assert np.isfinite(delay)
        assert float(delay) > 0.0

    def test_non_controlling_edge_is_nan(self, nfet90, pfet90):
        # With a = 0 the NAND output stays high whatever b does.
        gate = nand2_netlist(nfet90, pfet90, VDD)
        delay = gate_delay(gate, "b", held={"a": 0.0}, n_steps=64)
        assert np.isnan(delay)

    def test_corner_batch_shape(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        corners = np.array([-0.02, 0.02])
        delay = gate_delay(gate, "b", held={"a": VDD}, n_steps=64,
                           dvth_n_v=corners)
        assert delay.shape == (2,)
        # Weaker NFETs (higher Vth) pull down more slowly.
        assert delay[1] > delay[0]

    def test_rejects_unknown_switch_input(self, nfet90, pfet90):
        gate = nor2_netlist(nfet90, pfet90, VDD)
        with pytest.raises(ParameterError):
            gate_delay(gate, "z")
