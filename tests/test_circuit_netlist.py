"""Tests for the netlist representation."""

import pytest

from repro.circuit.netlist import Circuit, GROUND, Transistor
from repro.errors import ParameterError


@pytest.fixture()
def inverter_circuit(nfet90, pfet90):
    c = Circuit()
    c.add_vsource("vdd", "vdd", 0.25)
    c.add_vsource("vin", "in", 0.0)
    c.add_inverter("inv1", "in", "out", "vdd", nfet90, pfet90)
    return c


class TestConstruction:
    def test_nodes_collected(self, inverter_circuit):
        assert inverter_circuit.all_nodes() == {GROUND, "vdd", "in", "out"}

    def test_unknowns_exclude_fixed(self, inverter_circuit):
        assert inverter_circuit.unknown_nodes() == ["out"]

    def test_duplicate_name_rejected(self, inverter_circuit, nfet90):
        with pytest.raises(ParameterError):
            inverter_circuit.add_mosfet("inv1.mn", "x", "y", "0", nfet90)

    def test_ground_source_rejected(self):
        c = Circuit()
        with pytest.raises(ParameterError):
            c.add_vsource("bad", GROUND, 1.0)

    def test_double_driven_node_rejected(self):
        c = Circuit()
        c.add_vsource("a", "n1", 1.0)
        with pytest.raises(ParameterError):
            c.add_vsource("b", "n1", 2.0)

    def test_nonpositive_resistor_rejected(self):
        c = Circuit()
        with pytest.raises(ParameterError):
            c.add_resistor("r", "a", "b", 0.0)

    def test_nonpositive_capacitor_rejected(self):
        c = Circuit()
        with pytest.raises(ParameterError):
            c.add_capacitor("c", "a", "b", -1e-15)

    def test_waveform_source(self):
        c = Circuit()
        c.add_vsource("pulse", "n1", lambda t: 1.0 if t > 1e-9 else 0.0)
        assert c.sources[0].value(0.0) == 0.0
        assert c.sources[0].value(2e-9) == 1.0


class TestValidation:
    def test_valid_circuit_passes(self, inverter_circuit):
        inverter_circuit.validate()

    def test_empty_circuit_rejected(self):
        with pytest.raises(ParameterError):
            Circuit().validate()

    def test_floating_node_rejected(self, nfet90):
        c = Circuit()
        c.add_vsource("vdd", "vdd", 1.0)
        # "mid" connects only to a MOSFET gate: no current path.
        c.add_mosfet("m1", "vdd", "mid", GROUND, nfet90)
        c.add_resistor("r1", "vdd", "mid2", 1e3)
        with pytest.raises(ParameterError):
            c.validate()


class TestTransistorStamp:
    def test_nfet_forward(self, nfet90):
        t = Transistor("m", "d", "g", "s", nfet90)
        i = t.current_into_drain(0.25, 0.25, 0.0)
        assert i == pytest.approx(float(nfet90.ids(0.25, 0.25)))

    def test_nfet_reverse_symmetry(self, nfet90):
        t = Transistor("m", "d", "g", "s", nfet90)
        fwd = t.current_into_drain(0.25, 0.20, 0.0)
        rev = t.current_into_drain(0.0, 0.20, 0.25)
        assert rev == pytest.approx(-fwd)

    def test_pfet_conducts_when_gate_low(self, pfet90):
        t = Transistor("m", "d", "g", "s", pfet90)
        on = t.current_into_drain(0.0, 0.0, 0.25)     # vgs = -vdd
        off = t.current_into_drain(0.0, 0.25, 0.25)
        assert on < 0.0                               # flows out of drain
        assert abs(on) > 10.0 * abs(off)

    def test_zero_bias_zero_current(self, nfet90):
        t = Transistor("m", "d", "g", "s", nfet90)
        assert t.current_into_drain(0.1, 0.2, 0.1) == pytest.approx(0.0,
                                                                    abs=1e-18)
