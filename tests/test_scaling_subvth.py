"""Tests for the sub-V_th strategy optimiser."""

import pytest

from repro.device.mosfet import Polarity
from repro.errors import OptimizationError
from repro.scaling.roadmap import node_by_name
from repro.scaling.subvth import (
    SUB_VTH_EVAL_VDD,
    SubVthOptimizer,
    optimize_doping_for_length,
)


class TestDopingForLength:
    def test_meets_ioff_target(self):
        node = node_by_name("45nm")
        dev = optimize_doping_for_length(node, 60.0,
                                         vdd_leak=SUB_VTH_EVAL_VDD)
        assert dev.i_off_per_um(SUB_VTH_EVAL_VDD) == pytest.approx(
            100e-12, rel=0.01)

    def test_longer_gate_better_slope(self):
        node = node_by_name("45nm")
        short = optimize_doping_for_length(node, 32.0,
                                           vdd_leak=SUB_VTH_EVAL_VDD)
        long = optimize_doping_for_length(node, 64.0,
                                          vdd_leak=SUB_VTH_EVAL_VDD)
        assert long.ss_v_per_dec < short.ss_v_per_dec

    def test_custom_ioff_target(self):
        node = node_by_name("45nm")
        tight = optimize_doping_for_length(node, 60.0, ioff_target=20e-12,
                                           vdd_leak=SUB_VTH_EVAL_VDD)
        assert tight.i_off_per_um(SUB_VTH_EVAL_VDD) == pytest.approx(
            20e-12, rel=0.01)

    def test_tighter_target_higher_vth(self):
        node = node_by_name("45nm")
        loose = optimize_doping_for_length(node, 60.0, ioff_target=200e-12,
                                           vdd_leak=SUB_VTH_EVAL_VDD)
        tight = optimize_doping_for_length(node, 60.0, ioff_target=20e-12,
                                           vdd_leak=SUB_VTH_EVAL_VDD)
        assert tight.vth(0.1) > loose.vth(0.1)

    def test_impossible_target_raises(self):
        node = node_by_name("45nm")
        with pytest.raises(OptimizationError):
            optimize_doping_for_length(node, 32.0, ioff_target=1e-22)


class TestOptimizer:
    def test_gate_longer_than_roadmap_at_scaled_nodes(self, sub_family,
                                                      super_family):
        for ds, dp in zip(sub_family.designs[1:], super_family.designs[1:]):
            assert ds.nfet.geometry.l_poly_nm > dp.nfet.geometry.l_poly_nm

    def test_ss_flat_near_80(self, sub_family):
        ss = [d.nfet.ss_mv_per_dec for d in sub_family.designs]
        assert max(ss) - min(ss) < 5.0
        assert 72.0 < sum(ss) / len(ss) < 88.0

    def test_ioff_pinned_at_eval_bias(self, sub_family):
        for design in sub_family.designs:
            measured = design.nfet.i_off_per_um(SUB_VTH_EVAL_VDD)
            assert measured == pytest.approx(100e-12, rel=0.01)

    def test_energy_factor_falls_with_scaling(self, sub_family):
        factors = [d.load_capacitance() * d.nfet.ss_v_per_dec ** 2
                   for d in sub_family.designs]
        assert all(b < a for a, b in zip(factors, factors[1:]))

    def test_design_for_length_symmetric_pair(self):
        node = node_by_name("45nm")
        design = SubVthOptimizer(node).design_for_length(60.0)
        assert design.nfet.geometry.l_poly_nm == pytest.approx(60.0)
        assert design.pfet.geometry.l_poly_nm == pytest.approx(60.0)
        assert design.vdd == pytest.approx(SUB_VTH_EVAL_VDD)

    def test_energy_factor_definition(self):
        node = node_by_name("45nm")
        optimizer = SubVthOptimizer(node)
        design = optimizer.design_for_length(60.0)
        expected = design.load_capacitance() * design.nfet.ss_v_per_dec ** 2
        assert optimizer.energy_factor(design) == pytest.approx(expected)

    def test_flatness_selection_prefers_longer(self):
        # Among near-equal energy factors the optimiser must choose the
        # longest gate (the flattest S_S).
        rows = [
            (30.0, "d30", 1.000),
            (34.0, "d34", 0.990),
            (38.0, "d38", 1.005),   # within 2% of the 0.990 floor
            (42.0, "d42", 1.060),   # outside
        ]
        chosen = SubVthOptimizer._select(rows)
        assert chosen[0] == 38.0
        assert chosen[1] == "d38"  # the row itself, not just its length
