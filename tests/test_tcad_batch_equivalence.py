"""Batched vs sequential DeviceSimulator: extracted metrics must agree.

The acceptance bar for the batch kernel: on real (Table 2-optimised)
devices, the metrics the experiments actually consume — S_S, V_th,
I_on, I_off — match the warm-started sequential path to <= 1e-9
relative.  Both paths converge each bias to the same fixed point, so
any disagreement beyond solver tolerance is an indexing or assembly
bug in the batch kernel.
"""

import numpy as np
import pytest

from repro.tcad.extract import extract_ss, extract_vth_constant_current
from repro.tcad.simulator import DeviceSimulator

REL_TOL = 1e-9


def _metrics(sim: DeviceSimulator, vdd: float) -> dict[str, float]:
    vgs = np.linspace(-0.1, vdd, 41)
    curve = sim.id_vg(vdd, vgs)
    criterion = 1.0e-7 * sim.device.geometry.aspect_ratio
    return {
        "S_S": extract_ss(curve, decade_low=4.0, decade_high=1.5),
        "V_th": extract_vth_constant_current(curve, criterion),
        "I_on": float(curve.ids[-1]),
        "I_off": float(curve.current_at(0.0)),
    }


@pytest.mark.parametrize("node", ["90nm", "32nm"])
def test_batched_id_vg_matches_sequential(node, super_family):
    design = super_family.design(node)
    vdd = design.node.vdd_nominal
    batch = _metrics(DeviceSimulator(design.nfet, solver="batch"), vdd)
    seq = _metrics(DeviceSimulator(design.nfet, solver="sequential"), vdd)
    for name in ("S_S", "V_th", "I_on", "I_off"):
        assert batch[name] == pytest.approx(seq[name], rel=REL_TOL), name


def test_batched_sweeps_match_sequential(super_family):
    dev = super_family.design("90nm").nfet
    vgs = np.linspace(-0.2, 1.2, 23)
    batched = DeviceSimulator(dev, solver="batch")
    sequential = DeviceSimulator(dev, solver="sequential")
    assert batched.surface_potential_sweep(vgs) == pytest.approx(
        sequential.surface_potential_sweep(vgs), rel=REL_TOL, abs=1e-12)
    assert batched.inversion_charge_sweep(vgs, 0.3) == pytest.approx(
        sequential.inversion_charge_sweep(vgs, 0.3), rel=REL_TOL)


def test_batched_id_vd_matches_sequential(super_family):
    dev = super_family.design("90nm").nfet
    vds = np.linspace(0.0, 1.2, 13)
    batched = DeviceSimulator(dev, solver="batch").id_vd(0.9, vds)
    sequential = DeviceSimulator(dev, solver="sequential").id_vd(0.9, vds)
    assert batched == pytest.approx(sequential, rel=REL_TOL)
