"""Scalar-oracle vs batched circuit-kernel equivalence.

The vectorised kernels of :mod:`repro.circuit.batch` must reproduce
the sequential implementations to <= 1e-9 relative when both run at a
tight tolerance, across the Table 2 devices and supplies from deep
sub-V_th to moderate inversion — including the near-loss-of-
regeneration corner, where the batch path must flag exactly the trials
the scalar path raises on, with the same message.
"""

import numpy as np
import pytest

from repro.circuit import (
    Inverter,
    LOST_REGENERATION_MESSAGES,
    analytic_delay,
    analytic_delay_batch,
    butterfly_snm,
    find_vmin,
    gain_batch,
    lost_regeneration_error,
    noise_margins,
    noise_margins_batch,
    solve_vtc_batch,
)
from repro.circuit.energy import chain_energy_per_cycle, chain_energy_sweep
from repro.circuit.sram import SramCell
from repro.errors import LostRegenerationError, ParameterError
from repro.variability import sample_vth_offsets, snm_distribution
from repro.variability.montecarlo import _perturbed

#: Tight solve tolerance for the <= 1e-9 relative equivalence checks.
TIGHT = 1e-13
SUPPLIES = (0.15, 0.25, 0.40)


def _rel(a, b, floor=1e-30):
    return np.max(np.abs(np.asarray(a) - np.asarray(b))
                  / np.maximum(np.abs(np.asarray(b)), floor))


@pytest.mark.parametrize("vdd", SUPPLIES)
class TestVtcEquivalence:
    def test_vtc_grid(self, nfet90, pfet90, vdd):
        inv = Inverter(nfet=nfet90, pfet=pfet90, vdd=vdd)
        vins = np.linspace(0.0, vdd, 41)
        batch = solve_vtc_batch(inv, vins, xtol=TIGHT)
        seq = np.array([inv.vtc_point(float(v), xtol=TIGHT) for v in vins])
        assert np.max(np.abs(batch - seq)) <= 1e-9 * vdd

    def test_gain_stencil(self, nfet90, pfet90, vdd):
        inv = Inverter(nfet=nfet90, pfet=pfet90, vdd=vdd)
        vins = np.linspace(0.1 * vdd, 0.9 * vdd, 9)
        batch = gain_batch(inv, vins, xtol=TIGHT)
        seq = np.array([inv.gain(float(v), xtol=TIGHT) for v in vins])
        # The stencil divides VTC solver noise by 2h = 2e-4 vdd, so the
        # gains themselves only agree to ~xtol / (2h).
        assert np.allclose(batch, seq, rtol=1e-6, atol=TIGHT / (1e-4 * vdd))


class TestNoiseMarginEquivalence:
    FIELDS = ("v_il", "v_ih", "v_ol", "v_oh", "nm_low", "nm_high")

    @pytest.mark.parametrize("vdd", SUPPLIES)
    def test_table2_devices(self, super_family, vdd):
        for design in super_family.designs:
            inv = design.inverter(vdd)
            try:
                seq = noise_margins(inv, solver="sequential", xtol=TIGHT)
            except LostRegenerationError as err:
                assert str(err) == LOST_REGENERATION_MESSAGES[err.code - 1]
                with pytest.raises(LostRegenerationError) as batch_err:
                    noise_margins(inv, solver="batch", xtol=TIGHT)
                assert batch_err.value.code == err.code
                continue
            batch = noise_margins(inv, solver="batch", xtol=TIGHT)
            # All fields live on the supply scale, so 1e-9 relative
            # carries an absolute floor of 1e-9 vdd.
            for field in self.FIELDS:
                assert np.allclose(getattr(batch, field),
                                   getattr(seq, field),
                                   rtol=1e-9, atol=1e-9 * vdd), field
            assert np.allclose(batch.snm, seq.snm,
                               rtol=1e-9, atol=1e-9 * vdd)

    def test_near_loss_corner_flags_match(self, inverter_sub):
        """Deep perturbations: batch lost flags == scalar raises."""
        spread = np.linspace(-0.12, 0.12, 5)
        dn, dp = np.meshgrid(spread, -spread)
        dn, dp = dn.ravel(), dp.ravel()
        batch = noise_margins_batch(inverter_sub, dn, dp, xtol=TIGHT)
        assert batch.lost.any() and not batch.lost.all()
        for i in range(dn.size):
            pert = _perturbed(inverter_sub, dn[i], dp[i])
            if batch.lost[i]:
                code = int(batch.lost_code[i])
                with pytest.raises(LostRegenerationError) as err:
                    noise_margins(pert, solver="sequential", xtol=TIGHT)
                assert err.value.code == code
                assert str(err.value) == LOST_REGENERATION_MESSAGES[code - 1]
            else:
                seq = noise_margins(pert, solver="sequential", xtol=TIGHT)
                assert np.allclose(float(batch.snm[i]), seq.snm,
                                   rtol=1e-9, atol=1e-9 * inverter_sub.vdd)


class TestMonteCarloEquivalence:
    def test_delay_batch_matches_perturbed_scalar(self, inverter_sub):
        dn, dp = sample_vth_offsets(inverter_sub, 64)
        c_load = inverter_sub.load_capacitance(fanout=1)
        batch = analytic_delay_batch(inverter_sub, dn, dp, c_load)
        seq = np.array([
            analytic_delay(_perturbed(inverter_sub, a, b), c_load)
            for a, b in zip(dn, dp)
        ])
        assert _rel(batch, seq) <= 1e-9

    def test_snm_distribution_solvers_agree(self, inverter_sub):
        batch = snm_distribution(inverter_sub, n_trials=24)
        seq = snm_distribution(inverter_sub, n_trials=24,
                               solver="sequential")
        # Default (loose) tolerances: the paths agree to solver noise.
        assert np.allclose(batch.samples, seq.samples,
                           rtol=1e-5, atol=1e-8)


class TestEnergyEquivalence:
    def test_chain_energy_sweep(self, inverter_sub):
        grid = np.geomspace(0.1, 0.6, 17)
        batch = chain_energy_sweep(inverter_sub, grid)
        seq = np.array([
            chain_energy_per_cycle(inverter_sub.with_vdd(float(v))).total_j
            for v in grid
        ])
        assert _rel(batch, seq) <= 1e-9

    def test_find_vmin_solvers_agree(self, nfet90, pfet90):
        inv = Inverter(nfet=nfet90, pfet=pfet90, vdd=0.3)
        batch = find_vmin(inv)
        seq = find_vmin(inv, solver="sequential")
        assert batch.vmin == pytest.approx(seq.vmin, rel=1e-9)
        assert _rel(batch.energy_grid_j, seq.energy_grid_j) <= 1e-9


class TestSramEquivalence:
    def test_read_vtc(self, nfet90, pfet90):
        cell = SramCell(pulldown=nfet90.with_width_um(2.0),
                        pullup=pfet90.with_width_um(1.0),
                        access=nfet90.with_width_um(1.0),
                        vdd=0.30)
        vins_b, vouts_b = cell.read_vtc(61, xtol=TIGHT)
        vins_s, vouts_s = cell.read_vtc(61, solver="sequential", xtol=TIGHT)
        assert np.array_equal(vins_b, vins_s)
        assert np.max(np.abs(vouts_b - vouts_s)) <= 1e-9 * cell.vdd


class TestButterflyEquivalence:
    def test_lobe_square_solvers_identical(self, inverter_sub):
        vtc = inverter_sub.vtc(161)
        batch = butterfly_snm(vtc, solver="batch")
        seq = butterfly_snm(vtc, solver="sequential")
        assert batch == pytest.approx(seq, rel=1e-12, abs=1e-15)


class TestLostRegenerationNarrowing:
    """Satellite: only the structured error maps to SNM = 0."""

    @pytest.mark.parametrize("code", (1, 2))
    def test_structured_error_becomes_zero(self, inverter_sub, monkeypatch,
                                           code):
        import repro.variability.montecarlo as mc

        def fake_noise_margins(inverter, solver="batch"):
            raise lost_regeneration_error(code)

        monkeypatch.setattr(mc, "noise_margins", fake_noise_margins)
        result = mc.snm_distribution(inverter_sub, n_trials=5,
                                     solver="sequential")
        assert np.all(result.samples == 0.0)

    def test_genuine_bug_propagates(self, inverter_sub, monkeypatch):
        import repro.variability.montecarlo as mc

        def fake_noise_margins(inverter, solver="batch"):
            raise ParameterError("boom: not a regeneration loss")

        monkeypatch.setattr(mc, "noise_margins", fake_noise_margins)
        with pytest.raises(ParameterError, match="boom"):
            mc.snm_distribution(inverter_sub, n_trials=5,
                                solver="sequential")

    def test_same_message_plain_error_still_propagates(self, inverter_sub,
                                                       monkeypatch):
        """The old string-matching contract is gone: a plain
        ParameterError no longer silences as SNM = 0 even when its
        message happens to equal a canonical lost message."""
        import repro.variability.montecarlo as mc

        def fake_noise_margins(inverter, solver="batch"):
            raise ParameterError(LOST_REGENERATION_MESSAGES[0])

        monkeypatch.setattr(mc, "noise_margins", fake_noise_margins)
        with pytest.raises(ParameterError, match="never reaches"):
            mc.snm_distribution(inverter_sub, n_trials=5,
                                solver="sequential")

    def test_factory_rejects_unknown_code(self):
        with pytest.raises(ParameterError, match="must be 1 or 2"):
            lost_regeneration_error(3)


class TestSeedStreamSplit:
    """Satellite: NFET/PFET offsets come from independent child streams."""

    def test_pfet_draws_stable_under_trial_count(self, inverter_sub):
        short = sample_vth_offsets(inverter_sub, 50)
        long = sample_vth_offsets(inverter_sub, 100)
        assert np.array_equal(short[0], long[0][:50])
        assert np.array_equal(short[1], long[1][:50])

    def test_streams_independent(self, inverter_sub):
        offs_n, offs_p = sample_vth_offsets(inverter_sub, 200)
        # A shared stream would interleave: correlation of sorted halves
        # is not a concern, but identical normalised sequences would be.
        assert not np.allclose(offs_n / offs_n.std(),
                               offs_p / offs_p.std())
