"""Tests for global process corners."""

import pytest

from repro.device.corners import (
    Corner,
    CornerSpec,
    at_corner,
    corner_report,
    ff_ss_delay_spread,
)
from repro.errors import ParameterError


class TestAtCorner:
    def test_tt_is_identity(self, nfet90):
        assert at_corner(nfet90, Corner.TT) is nfet90

    def test_ff_lowers_vth(self, nfet90):
        assert at_corner(nfet90, Corner.FF).vth(0.1) < nfet90.vth(0.1)

    def test_ss_raises_vth(self, nfet90):
        assert at_corner(nfet90, Corner.SS).vth(0.1) > nfet90.vth(0.1)

    def test_ff_leaks_more(self, nfet90):
        assert at_corner(nfet90, Corner.FF).i_off(1.0) > nfet90.i_off(1.0)

    def test_ff_drives_more(self, nfet90):
        assert at_corner(nfet90, Corner.FF).i_on(0.25) > nfet90.i_on(0.25)

    def test_halo_scaled_with_substrate(self, nfet90):
        ff = at_corner(nfet90, Corner.FF)
        ratio_base = (nfet90.profile.n_p_halo_cm3
                      / nfet90.profile.n_sub_cm3)
        ratio_ff = ff.profile.n_p_halo_cm3 / ff.profile.n_sub_cm3
        assert ratio_ff == pytest.approx(ratio_base, rel=1e-9)

    def test_halo_free_device(self):
        from repro.device import nfet
        dev = nfet(65, 2.1, 1.5e18)
        ss = at_corner(dev, Corner.SS)
        assert ss.profile.halo is None
        assert ss.vth(0.1) > dev.vth(0.1)

    def test_spec_validation(self):
        with pytest.raises(ParameterError):
            CornerSpec(tox_sigma_pct=-1.0)
        with pytest.raises(ParameterError):
            CornerSpec(doping_sigma_pct=60.0)


class TestReports:
    def test_report_structure(self, nfet90):
        report = corner_report(nfet90, 0.25)
        assert set(report) == {"tt", "ff", "ss"}
        assert report["ff"]["vth_mv"] < report["ss"]["vth_mv"]

    def test_report_rejects_bad_vdd(self, nfet90):
        with pytest.raises(ParameterError):
            corner_report(nfet90, 0.0)

    def test_subthreshold_spread_exponential(self, nfet90):
        # The classic sub-V_th sign-off pain: FF/SS spread is much
        # larger at 250 mV than at nominal supply.
        sub = ff_ss_delay_spread(nfet90, 0.25)
        nominal = ff_ss_delay_spread(nfet90, 1.2)
        assert sub > 2.0 * nominal
        assert sub > 3.0

    def test_larger_sigmas_larger_spread(self, nfet90):
        small = ff_ss_delay_spread(nfet90, 0.25,
                                   CornerSpec(tox_sigma_pct=2.0,
                                              doping_sigma_pct=2.0))
        large = ff_ss_delay_spread(nfet90, 0.25,
                                   CornerSpec(tox_sigma_pct=8.0,
                                              doping_sigma_pct=10.0))
        assert large > small
