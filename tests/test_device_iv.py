"""Tests for the unified EKV-style I-V model."""

import numpy as np
import pytest

from repro.constants import thermal_voltage
from repro.device import nfet
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def dev():
    return nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


class TestCurrentBasics:
    def test_positive_current(self, dev):
        assert dev.ids(0.5, 0.5) > 0.0

    def test_zero_vds_zero_current(self, dev):
        assert dev.ids(0.5, 0.0) == pytest.approx(0.0, abs=1e-18)

    def test_monotone_in_vgs(self, dev):
        vgs = np.linspace(0.0, 1.2, 40)
        currents = dev.iv.ids(vgs, np.full_like(vgs, 1.0))
        assert np.all(np.diff(currents) > 0.0)

    def test_monotone_in_vds(self, dev):
        # The velocity-saturation interpolation can produce a tiny
        # (<3%) negative-differential-resistance artifact near V_dsat,
        # as many compact models do; require monotonicity within that.
        vds = np.linspace(0.0, 1.2, 40)
        currents = dev.iv.ids(np.full_like(vds, 0.6), vds)
        floor = -0.03 * currents[:-1]
        assert np.all(np.diff(currents) > floor)

    def test_rejects_negative_vds(self, dev):
        with pytest.raises(ParameterError):
            dev.ids(0.5, -0.1)

    def test_scalar_in_scalar_out(self, dev):
        assert isinstance(dev.ids(0.3, 0.3), float)

    def test_array_broadcast(self, dev):
        vgs = np.linspace(0, 1, 11)
        out = dev.iv.ids(vgs, np.full_like(vgs, 0.5))
        assert out.shape == vgs.shape


class TestSubthresholdRegion:
    def test_exponential_slope_matches_ss(self, dev):
        # Extract the log-slope deep below threshold (where the EKV
        # interpolation is purely exponential); must match the analytic
        # S_S within a few percent.
        vth = dev.vth(0.1)
        vgs = np.linspace(vth - 0.50, vth - 0.30, 21)
        currents = dev.iv.ids(vgs, np.full_like(vgs, 0.1))
        slope = np.polyfit(np.log10(currents), vgs, 1)[0]
        assert slope == pytest.approx(dev.ss_v_per_dec, rel=0.05)

    def test_drain_factor_in_weak_inversion(self, dev):
        vth = dev.vth(0.05)
        vt = thermal_voltage()
        i1 = dev.ids(vth - 0.2, 0.5 * vt)
        i2 = dev.ids(vth - 0.2, 10.0 * vt)
        expected = (1 - np.exp(-0.5)) / (1 - np.exp(-10.0))
        assert i1 / i2 == pytest.approx(expected, rel=0.15)

    def test_width_proportionality(self, dev):
        wide = dev.with_width_um(2.0)
        assert wide.i_off(1.2) == pytest.approx(2.0 * dev.i_off(1.2),
                                                rel=1e-6)


class TestStrongInversion:
    def test_saturation(self, dev):
        # Beyond V_dsat the current stops growing quickly with vds.
        i1 = dev.ids(1.2, 0.9)
        i2 = dev.ids(1.2, 1.2)
        assert i2 / i1 < 1.25

    def test_on_current_magnitude(self, dev):
        # A 90nm-class LSTP-like device: tens to hundreds of uA/um.
        ion = dev.i_on_per_um(1.2)
        assert 3e-5 < ion < 1e-3


class TestDibl:
    def test_vth_falls_with_vds(self, dev):
        assert dev.vth(1.2) < dev.vth(0.05)

    def test_ioff_grows_with_vdd(self, dev):
        assert dev.i_off(1.2) > dev.i_off(0.6)


class TestVthOffset:
    def test_offset_shifts_vth(self, dev):
        shifted = dev.with_vth_offset(0.05)
        assert shifted.vth(0.1) == pytest.approx(dev.vth(0.1) + 0.05)

    def test_offset_reduces_current(self, dev):
        shifted = dev.with_vth_offset(0.05)
        assert shifted.ids(0.3, 0.3) < dev.ids(0.3, 0.3)

    def test_negative_offset_increases_leakage(self, dev):
        shifted = dev.with_vth_offset(-0.05)
        assert shifted.i_off(1.0) > dev.i_off(1.0)
