"""Tests for doping profiles (substrate + Gaussian halos)."""

import numpy as np
import pytest

from repro.constants import nm_to_cm
from repro.device.doping import DopingProfile, HaloImplant
from repro.device.geometry import DeviceGeometry
from repro.errors import ParameterError


@pytest.fixture()
def halo():
    return HaloImplant(peak_cm3=2e18, sigma_x_cm=nm_to_cm(10.0),
                       sigma_y_cm=nm_to_cm(12.0), depth_cm=nm_to_cm(18.0))


@pytest.fixture()
def profile(halo):
    return DopingProfile(n_sub_cm3=1.2e18, halo=halo)


class TestHaloImplant:
    def test_lateral_average_short_channel_limit(self, halo):
        # As L -> 0 the two pockets merge: average -> 2 * peak.
        tiny = halo.lateral_average(nm_to_cm(0.01))
        assert tiny == pytest.approx(2.0 * halo.peak_cm3, rel=1e-3)

    def test_lateral_average_long_channel_limit(self, halo):
        big = halo.lateral_average(nm_to_cm(5000.0))
        assert big < 0.02 * halo.peak_cm3

    def test_lateral_average_monotone_in_length(self, halo):
        lengths = [nm_to_cm(l) for l in (10, 20, 40, 80, 160)]
        values = [halo.lateral_average(l) for l in lengths]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_lateral_average_matches_numeric_integral(self, halo):
        l_eff = nm_to_cm(45.0)
        x = np.linspace(0.0, l_eff, 20001)
        s = halo.sigma_x_cm
        numeric = np.trapezoid(
            halo.peak_cm3 * (np.exp(-x ** 2 / (2 * s ** 2))
                             + np.exp(-(x - l_eff) ** 2 / (2 * s ** 2))),
            x) / l_eff
        assert halo.lateral_average(l_eff) == pytest.approx(numeric, rel=1e-4)

    def test_vertical_weight_peaks_at_depth(self, halo):
        assert halo.vertical_weight(halo.depth_cm) == pytest.approx(1.0)
        assert halo.vertical_weight(0.0) < 1.0

    def test_vertical_average_matches_numeric(self, halo):
        limit = nm_to_cm(25.0)
        y = np.linspace(0.0, limit, 20001)
        numeric = np.trapezoid(halo.vertical_weight(y), y) / limit
        assert halo.vertical_average(limit) == pytest.approx(numeric, rel=1e-4)

    def test_for_geometry(self):
        g = DeviceGeometry.from_nm(65.0)
        h = HaloImplant.for_geometry(g, 2e18)
        assert h.peak_cm3 == 2e18
        assert h.sigma_x_cm < g.junction_depth_cm

    def test_for_geometry_requires_junction(self):
        g = DeviceGeometry(l_poly_cm=nm_to_cm(65.0))
        with pytest.raises(ParameterError):
            HaloImplant.for_geometry(g, 2e18)

    def test_scaled(self, halo):
        s = halo.scaled(0.7, peak_factor=1.2)
        assert s.sigma_x_cm == pytest.approx(0.7 * halo.sigma_x_cm)
        assert s.peak_cm3 == pytest.approx(1.2 * halo.peak_cm3)

    def test_rejects_negative_peak(self):
        with pytest.raises(ParameterError):
            HaloImplant(peak_cm3=-1.0, sigma_x_cm=1e-7, sigma_y_cm=1e-7,
                        depth_cm=0.0)


class TestDopingProfile:
    def test_net_halo_is_sum(self, profile):
        assert profile.n_halo_net_cm3 == pytest.approx(1.2e18 + 2e18)

    def test_halo_free_profile(self):
        p = DopingProfile(n_sub_cm3=1e18)
        assert p.n_halo_net_cm3 == pytest.approx(1e18)
        assert p.effective_channel_doping(nm_to_cm(45.0)) == pytest.approx(1e18)

    def test_effective_doping_rollup(self, profile):
        short = profile.effective_channel_doping(nm_to_cm(20.0))
        long = profile.effective_channel_doping(nm_to_cm(200.0))
        assert short > long > profile.n_sub_cm3

    def test_vertical_profile_shape(self, profile):
        depths = np.linspace(0.0, nm_to_cm(60.0), 101)
        n = profile.vertical_profile(depths, nm_to_cm(45.0))
        assert n.shape == depths.shape
        assert np.all(n >= profile.n_sub_cm3)
        # Peak near the halo depth.
        peak_idx = int(np.argmax(n))
        assert abs(depths[peak_idx] - profile.halo.depth_cm) < nm_to_cm(2.0)

    def test_raster2d_consistent_with_vertical(self, profile):
        l_eff = nm_to_cm(45.0)
        x = np.linspace(0.0, l_eff, 501)
        y = np.linspace(0.0, nm_to_cm(60.0), 101)
        field = profile.raster2d(x, y, l_eff)
        assert field.shape == (x.size, y.size)
        # Lateral average of the 2-D map equals the vertical-profile cut.
        avg = field.mean(axis=0)
        expected = profile.vertical_profile(y, l_eff)
        assert np.allclose(avg, expected, rtol=0.02)

    def test_with_substrate(self, profile):
        assert profile.with_substrate(2e18).n_sub_cm3 == 2e18

    def test_with_halo_peak(self, profile):
        assert profile.with_halo_peak(5e18).n_p_halo_cm3 == 5e18

    def test_with_halo_peak_requires_halo(self):
        with pytest.raises(ParameterError):
            DopingProfile(n_sub_cm3=1e18).with_halo_peak(1e18)

    def test_without_halo(self, profile):
        assert profile.without_halo().halo is None

    def test_rejects_nonpositive_substrate(self):
        with pytest.raises(ParameterError):
            DopingProfile(n_sub_cm3=0.0)
