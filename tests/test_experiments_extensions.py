"""Tests for the fig1 artefact and the three extension experiments."""

import numpy as np
import pytest

from repro.experiments import run_experiment


class TestFig1:
    def test_claims_hold(self):
        result = run_experiment("fig1")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_edge_cut_exceeds_mid_cut(self):
        result = run_experiment("fig1")
        edge = result.get_series("doping at channel edge")
        mid = result.get_series("doping at mid-channel")
        assert edge.y.max() > mid.y.max()


class TestExtMultivth:
    def test_claims_hold(self):
        result = run_experiment("ext_multivth")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_vth_series_monotone(self):
        result = run_experiment("ext_multivth")
        vth = result.get_series("Vth by flavour")
        assert np.all(np.diff(vth.y) > 0.0)


class TestExtHighk:
    def test_claims_hold(self):
        result = run_experiment("ext_highk")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_hfo2_always_leaks_less(self):
        result = run_experiment("ext_highk")
        sio2_leak = result.get_series("SiO2 gate leakage")
        hfo2_leak = result.get_series("HfO2 gate leakage")
        assert np.all(hfo2_leak.y < sio2_leak.y)


class TestEq3:
    def test_claims_hold(self):
        result = run_experiment("eq3")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_snm_vs_m_monotone(self):
        result = run_experiment("eq3")
        snm = result.get_series("analytic SNM vs slope factor")
        assert np.all(np.diff(snm.y) < 0.0)


class TestExtCorners:
    def test_claims_hold(self):
        result = run_experiment("ext_corners")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_vth_window_positive(self):
        result = run_experiment("ext_corners")
        sup = result.get_series("Vth by corner (super-vth)")
        assert sup.y[-1] > sup.y[0]


class TestExtPareto:
    def test_claims_hold(self):
        result = run_experiment("ext_pareto")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_frontiers_monotone(self):
        result = run_experiment("ext_pareto")
        for label in ("frontier super-vth", "frontier sub-vth"):
            s = result.get_series(label)
            assert np.all(np.diff(s.x) > 0.0)       # delay ascending
            assert np.all(np.diff(s.y) < 0.0)       # energy descending


class TestExtProjection:
    def test_claims_hold(self):
        result = run_experiment("ext_projection")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_series_span_to_16nm(self):
        result = run_experiment("ext_projection")
        ss_sub = result.get_series("S_S projection sub-vth")
        assert ss_sub.x.min() < 20.0     # reaches the 16nm node


class TestExtDvs:
    def test_claims_hold(self):
        result = run_experiment("ext_dvs")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_gated_curve_flat_below_vmin_rate(self):
        result = run_experiment("ext_dvs")
        gated = result.get_series("E(throughput) sub-vth, power-gated")
        # The first four probes sit at or below the V_min rate.
        assert np.allclose(gated.y[:4], gated.y[0], rtol=1e-6)


class TestHeadlines:
    def test_all_five_claims_hold(self):
        result = run_experiment("headlines")
        assert len(result.comparisons) == 5
        assert result.all_hold()


class TestExtTemperature:
    def test_claims_hold(self):
        result = run_experiment("ext_temperature")
        failing = [c.claim for c in result.comparisons if not c.holds]
        assert not failing, failing

    def test_leakage_monotone_in_temperature(self):
        result = run_experiment("ext_temperature")
        ioff = result.get_series("Ioff vs T @250mV")
        assert np.all(np.diff(ioff.y) > 0.0)

    def test_ss_monotone_in_temperature(self):
        result = run_experiment("ext_temperature")
        ss = result.get_series("S_S vs T")
        assert np.all(np.diff(ss.y) > 0.0)
