"""Tests for the calibration-sensitivity framework."""

import pytest

from repro.device import geometry as geometry_mod
from repro.device import nfet
from repro.device import subthreshold as subthreshold_mod
from repro.device import threshold as threshold_mod
from repro.errors import ParameterError
from repro.scaling.sensitivity import calibration, headline_under_calibration


class TestCalibrationContext:
    def test_overrides_inside_scope(self):
        with calibration(sce_prefactor=11.0, lt_calibration=0.6,
                         overlap_fraction=0.12):
            assert subthreshold_mod.SCE_PREFACTOR_DEFAULT == 11.0
            assert threshold_mod.LT_CALIBRATION == 0.6
            assert geometry_mod.OVERLAP_FRACTION == 0.12

    def test_restores_on_exit(self):
        before = (geometry_mod.OVERLAP_FRACTION,
                  threshold_mod.LT_CALIBRATION,
                  subthreshold_mod.SCE_PREFACTOR_DEFAULT)
        with calibration(sce_prefactor=11.0):
            pass
        after = (geometry_mod.OVERLAP_FRACTION,
                 threshold_mod.LT_CALIBRATION,
                 subthreshold_mod.SCE_PREFACTOR_DEFAULT)
        assert before == after

    def test_restores_on_exception(self):
        before = subthreshold_mod.SCE_PREFACTOR_DEFAULT
        with pytest.raises(RuntimeError):
            with calibration(sce_prefactor=11.0):
                raise RuntimeError("boom")
        assert subthreshold_mod.SCE_PREFACTOR_DEFAULT == before

    def test_devices_built_inside_see_override(self):
        base = nfet(22, 1.53, 2e18, 1e19)
        with calibration(sce_prefactor=11.0):
            harsher = nfet(22, 1.53, 2e18, 1e19)
        assert harsher.ss_v_per_dec > base.ss_v_per_dec

    def test_rejects_bad_overrides(self):
        with pytest.raises(ParameterError):
            with calibration(sce_prefactor=-1.0):
                pass
        with pytest.raises(ParameterError):
            with calibration(overlap_fraction=0.6):
                pass


class TestHeadlines:
    def test_default_matches_cached_families(self, super_family, sub_family):
        from repro.circuit import noise_margins
        result = headline_under_calibration()
        snm_sup = noise_margins(super_family.design("32nm").inverter(0.25)).snm
        snm_sub = noise_margins(sub_family.design("32nm").inverter(0.25)).snm
        assert result.snm_advantage == pytest.approx(
            snm_sub / snm_sup - 1.0, abs=1e-6)

    def test_textbook_prefactor_conclusions_hold(self):
        result = headline_under_calibration(sce_prefactor=11.0)
        assert result.snm_advantage > 0.08
        assert result.energy_advantage > 0.05
        assert result.ss_degradation > 0.0

    def test_result_records_calibration(self):
        result = headline_under_calibration(lt_calibration=0.5)
        assert result.lt_calibration == pytest.approx(0.5)
