"""Tests for the Eq. 4-8 scaling metrics."""

import pytest

from repro.errors import ParameterError
from repro.scaling.metrics import (
    delay_at_vmin,
    delay_factor,
    energy_factor,
    geometric_mean_change,
    intrinsic_delay,
    per_generation_change,
    vmin_estimate,
)


class TestFactors:
    def test_intrinsic_delay(self):
        assert intrinsic_delay(1e-15, 1.2, 1e-4) == pytest.approx(1.2e-11)

    def test_intrinsic_delay_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            intrinsic_delay(0.0, 1.2, 1e-4)

    def test_delay_factor_fixed_ioff(self):
        assert delay_factor(2e-15, 0.08) == pytest.approx(1.6e-16)

    def test_delay_factor_with_ioff(self):
        assert delay_factor(2e-15, 0.08, 1e-10) == pytest.approx(1.6e-6)

    def test_energy_factor(self):
        assert energy_factor(2e-15, 0.08) == pytest.approx(1.28e-17)

    def test_energy_factor_quadratic_in_ss(self):
        assert energy_factor(1e-15, 0.16) == pytest.approx(
            4.0 * energy_factor(1e-15, 0.08))

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            energy_factor(-1e-15, 0.08)
        with pytest.raises(ParameterError):
            delay_factor(1e-15, 0.08, i_off_a=0.0)


class TestVminModel:
    def test_proportional_to_ss(self):
        assert vmin_estimate(0.08) == pytest.approx(
            2.0 * vmin_estimate(0.04))

    def test_plausible_range(self):
        # S_S ~ 80 mV/dec should give a V_min in the 200-350 mV band.
        assert 0.15 < vmin_estimate(0.080) < 0.40

    def test_delay_at_vmin_positive(self):
        assert delay_at_vmin(2e-15, 0.08, 1e-10) > 0.0

    def test_delay_at_vmin_proportional_to_factor(self):
        # At fixed S_S, Eq. 6: t_p ~ C_L / I_off.
        t1 = delay_at_vmin(1e-15, 0.08, 1e-10)
        t2 = delay_at_vmin(2e-15, 0.08, 2e-10)
        assert t2 == pytest.approx(t1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            vmin_estimate(0.0)
        with pytest.raises(ParameterError):
            delay_at_vmin(1e-15, 0.08, 0.0)


class TestGenerationChanges:
    def test_per_generation(self):
        changes = per_generation_change([1.0, 0.8, 0.6])
        assert changes[0] == pytest.approx(-0.2)
        assert changes[1] == pytest.approx(-0.25)

    def test_geometric_mean(self):
        rate = geometric_mean_change([1.0, 0.7, 0.49])
        assert rate == pytest.approx(-0.3)

    def test_needs_two_values(self):
        with pytest.raises(ParameterError):
            per_generation_change([1.0])

    def test_rejects_zero_normaliser(self):
        with pytest.raises(ParameterError):
            per_generation_change([0.0, 1.0])
