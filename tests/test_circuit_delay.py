"""Tests for the delay metrics (analytic Eq. 4 and transient FO1)."""

import pytest

from repro.circuit.delay import DelayResult, analytic_delay, fo1_delay
from repro.errors import ParameterError


class TestAnalyticDelay:
    def test_positive(self, inverter_sub):
        assert analytic_delay(inverter_sub) > 0.0

    def test_linear_in_load(self, inverter_sub):
        c = inverter_sub.load_capacitance(1)
        assert analytic_delay(inverter_sub, 2.0 * c) == pytest.approx(
            2.0 * analytic_delay(inverter_sub, c))

    def test_linear_in_kd(self, inverter_sub):
        c = inverter_sub.load_capacitance(1)
        assert analytic_delay(inverter_sub, c, k_d=1.38) == pytest.approx(
            2.0 * analytic_delay(inverter_sub, c, k_d=0.69))

    def test_rejects_bad_kd(self, inverter_sub):
        with pytest.raises(ParameterError):
            analytic_delay(inverter_sub, k_d=0.0)

    def test_rejects_bad_load(self, inverter_sub):
        with pytest.raises(ParameterError):
            analytic_delay(inverter_sub, c_load_f=-1e-15)


class TestFo1Delay:
    def test_analytic_only(self, inverter_sub):
        result = fo1_delay(inverter_sub, transient=False)
        assert result.transient_s is None
        assert result.best == result.analytic_s

    def test_transient_matches_analytic_within_factor(self, inverter_sub):
        result = fo1_delay(inverter_sub, transient=True)
        assert result.transient_s == pytest.approx(result.analytic_s,
                                                   rel=0.5)
        assert result.best == result.transient_s

    def test_uses_fo1_load(self, inverter_sub):
        result = fo1_delay(inverter_sub, transient=False)
        assert result.c_load_f == pytest.approx(
            inverter_sub.load_capacitance(1))

    def test_result_records_vdd(self, inverter_sub):
        assert fo1_delay(inverter_sub, transient=False).vdd == pytest.approx(
            inverter_sub.vdd)


class TestDelayResult:
    def test_best_prefers_transient(self):
        r = DelayResult(vdd=0.25, c_load_f=1e-15, analytic_s=1e-9,
                        transient_s=1.2e-9)
        assert r.best == 1.2e-9
