"""Tests for the DCVS level shifter (contention dynamics via MNA)."""

import pytest

from repro.circuit.level_shifter import LevelShifter, min_convertible_vdd
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def devices(sub_family):
    design = sub_family.design("32nm")
    return design.nfet, design.pfet


def shifter(devices, vdd_low, width=4.0):
    n, p = devices
    return LevelShifter(nfet=n, pfet=p, vdd_low=vdd_low, vdd_high=0.9,
                        nfet_width_um=width)


class TestConstruction:
    def test_polarity_enforced(self, devices):
        n, p = devices
        with pytest.raises(ParameterError):
            LevelShifter(nfet=p, pfet=n, vdd_low=0.3, vdd_high=0.9)

    def test_domain_ordering_enforced(self, devices):
        n, p = devices
        with pytest.raises(ParameterError):
            LevelShifter(nfet=n, pfet=p, vdd_low=1.2, vdd_high=0.9)

    def test_width_positive(self, devices):
        n, p = devices
        with pytest.raises(ParameterError):
            LevelShifter(nfet=n, pfet=p, vdd_low=0.3, vdd_high=0.9,
                         nfet_width_um=0.0)

    def test_vin_domain_checked(self, devices):
        ls = shifter(devices, 0.3)
        with pytest.raises(ParameterError):
            ls.output_levels(0.5)


class TestConversion:
    def test_converts_from_near_nominal(self, devices):
        # With the input domain near the output rail, conversion is easy.
        assert shifter(devices, 0.85).converts_correctly()

    def test_fails_from_deep_subthreshold(self, devices):
        # The classic DCVS limitation: a 300 mV input cannot overpower
        # the high-rail PFETs — special topologies exist for a reason.
        assert not shifter(devices, 0.30).converts_correctly()

    def test_upsizing_pulldowns_helps(self, devices):
        probe = 0.52
        small = shifter(devices, probe, width=4.0)
        big = shifter(devices, probe, width=16.0)
        assert not small.converts_correctly()
        assert big.converts_correctly()

    def test_min_convertible_bisection(self, devices):
        ls = shifter(devices, 0.9, width=16.0)
        vmin = min_convertible_vdd(ls, lo=0.3, hi=0.9, tol=0.02)
        assert 0.40 < vmin < 0.60
        assert ls.with_vdd_low(vmin + 0.02).converts_correctly()

    def test_min_convertible_raises_when_hopeless(self, devices):
        n, p = devices
        tiny = LevelShifter(nfet=n, pfet=p, vdd_low=0.25, vdd_high=0.9,
                            nfet_width_um=0.5)
        with pytest.raises(ParameterError):
            min_convertible_vdd(tiny, lo=0.1)
