"""Tests for the batched Poisson kernel against the sequential oracle."""

import numpy as np
import pytest

from repro.constants import nm_to_cm
from repro.device.electrostatics import flatband_voltage
from repro.errors import ConvergenceError, ParameterError
from repro.materials.oxide import sio2
from repro.tcad.charge import sheet_charges, sheet_charges_batch
from repro.tcad.grid import Mesh1D
from repro.tcad.poisson1d import solve_mos_poisson, solve_mos_poisson_batch

N_SUB = 1.5e18
STACK = sio2(nm_to_cm(2.1))


@pytest.fixture(scope="module")
def mesh():
    return Mesh1D.geometric(8e-6, n_nodes=181)


@pytest.fixture(scope="module")
def doping(mesh):
    return np.full(mesh.n_nodes, N_SUB)


@pytest.fixture(scope="module")
def vfb():
    return flatband_voltage(N_SUB)


@pytest.fixture(scope="module")
def bias_grid(vfb):
    """Accumulation through strong inversion."""
    return np.linspace(vfb - 0.6, vfb + 2.5, 33)


@pytest.fixture(scope="module")
def batch(mesh, doping, vfb, bias_grid):
    return solve_mos_poisson_batch(mesh, doping, STACK, bias_grid, vfb)


@pytest.fixture(scope="module")
def oracle(mesh, doping, vfb, bias_grid):
    """Warm-started sequential solutions at the same biases."""
    solutions = []
    warm = None
    for vg in bias_grid:
        sol = solve_mos_poisson(mesh, doping, STACK, float(vg), vfb,
                                initial_psi=warm)
        solutions.append(sol)
        warm = sol.psi_v
    return solutions


class TestOracleEquivalence:
    def test_full_profiles_match(self, batch, oracle):
        psi_oracle = np.array([s.psi_v for s in oracle])
        assert np.max(np.abs(batch.psi_v - psi_oracle)) < 1e-11

    def test_surface_potentials_match(self, batch, oracle):
        expected = np.array([s.surface_potential_v for s in oracle])
        assert batch.surface_potential_v == pytest.approx(expected,
                                                          rel=1e-12,
                                                          abs=1e-12)

    def test_sheet_charges_match(self, batch, oracle):
        charges = sheet_charges_batch(batch)
        for i, sol in enumerate(oracle):
            scalar = sheet_charges(sol)
            assert charges.inversion[i] == pytest.approx(scalar.inversion,
                                                         rel=1e-9)
            assert charges.depletion[i] == pytest.approx(scalar.depletion,
                                                         rel=1e-9)

    def test_scalar_view_round_trips(self, batch, bias_grid):
        sol = batch.solution(5)
        assert sol.vg == bias_grid[5]
        assert sol.surface_potential_v == batch.surface_potential_v[5]
        assert len(batch.solutions()) == batch.n_bias


class TestBatchBehaviour:
    def test_monotone_surface_potential(self, batch):
        assert np.all(np.diff(batch.surface_potential_v) > 0.0)

    def test_scalar_channel_potential_broadcasts(self, mesh, doping, vfb):
        vgs = np.array([vfb + 1.0, vfb + 1.5])
        batch = solve_mos_poisson_batch(mesh, doping, STACK, vgs, vfb,
                                        channel_potential_v=0.3)
        assert batch.channel_potential_v == pytest.approx([0.3, 0.3])

    def test_per_bias_channel_potential(self, mesh, doping, vfb):
        vgs = np.full(2, vfb + 2.0)
        batch = solve_mos_poisson_batch(mesh, doping, STACK, vgs, vfb,
                                        channel_potential_v=np.array(
                                            [0.0, 0.4]))
        # Quasi-Fermi shift suppresses surface electrons at the drain end.
        assert batch.electron_cm3[1, 0] < batch.electron_cm3[0, 0]

    def test_shared_warm_start(self, mesh, doping, vfb, batch, bias_grid):
        warm = batch.psi_v[-1]
        again = solve_mos_poisson_batch(mesh, doping, STACK, bias_grid, vfb,
                                        initial_psi=warm)
        assert np.max(np.abs(again.psi_v - batch.psi_v)) < 1e-9

    def test_stacked_warm_start(self, mesh, doping, vfb, batch, bias_grid):
        again = solve_mos_poisson_batch(mesh, doping, STACK, bias_grid, vfb,
                                        initial_psi=batch.psi_v)
        assert again.iterations.max() <= 2

    def test_empty_batch(self, mesh, doping, vfb):
        batch = solve_mos_poisson_batch(mesh, doping, STACK,
                                        np.empty(0), vfb)
        assert batch.n_bias == 0
        assert batch.psi_v.shape == (0, mesh.n_nodes)


class TestValidation:
    def test_rejects_mismatched_doping(self, mesh, vfb):
        with pytest.raises(ParameterError):
            solve_mos_poisson_batch(mesh, np.full(10, N_SUB), STACK,
                                    np.array([0.5]), vfb)

    def test_rejects_bad_warm_start_shape(self, mesh, doping, vfb):
        with pytest.raises(ParameterError):
            solve_mos_poisson_batch(mesh, doping, STACK,
                                    np.array([0.5, 0.7]), vfb,
                                    initial_psi=np.zeros(5))
        with pytest.raises(ParameterError):
            solve_mos_poisson_batch(mesh, doping, STACK,
                                    np.array([0.5, 0.7]), vfb,
                                    initial_psi=np.zeros((3, mesh.n_nodes)))

    def test_rejects_2d_bias_grid(self, mesh, doping, vfb):
        with pytest.raises(ParameterError):
            solve_mos_poisson_batch(mesh, doping, STACK,
                                    np.zeros((2, 2)), vfb)

    def test_convergence_error_carries_diagnostics(self, mesh, doping, vfb):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_mos_poisson_batch(mesh, doping, STACK,
                                    np.array([vfb + 2.0]), vfb, max_iter=2)
        err = excinfo.value
        assert err.iterations == 2
        assert err.residual is not None and err.residual > 0.0
