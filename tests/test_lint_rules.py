"""Fixture tests for ``repro lint``: every rule, both polarities.

Each test builds a miniature repository layout in ``tmp_path`` (the
rules resolve cross-file facts — equivalence suites, the perf
registry, benchmark literals — relative to a root) and asserts the
rule fires on the offending snippet and stays quiet on the sanctioned
one.  The suppression and baseline layers, the CLI exit codes, and the
real repository's own cleanliness are covered at the end.
"""

import json
import pathlib
import textwrap

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.lint import (Baseline, ProjectContext, lint_paths,
                        lint_repository, rule_catalogue)
from repro.lint.cli import run_lint_command

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: A perf.py with a one-entry registry for the RPR006 fixtures.
FAKE_PERF = '''
KNOWN_COUNTERS = frozenset({"poisson.solves"})
DYNAMIC_COUNTER_PREFIXES = ("cache.",)
'''


def make_repo(tmp_path, files):
    """Write ``files`` (rel path -> source) into a mini repo layout."""
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    for required in ("src/repro", "tests", "benchmarks"):
        (tmp_path / required).mkdir(parents=True, exist_ok=True)
    return tmp_path


def lint_fixture(tmp_path, files, baseline=None):
    """Lint the ``src/repro`` members of a fixture repo."""
    root = make_repo(tmp_path, files)
    context = ProjectContext(root)
    targets = [root / rel for rel in sorted(files)
               if rel.startswith("src/repro/")]
    return lint_paths(targets, context, baseline)


def active_ids(report):
    return sorted(f.rule_id for f in report.active)


class TestRpr001FloatEquality:
    def test_flags_float_literal_comparison(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 1.5
        """})
        assert active_ids(report) == ["RPR001"]

    def test_int_sentinel_and_isclose_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            import math

            def f(x: float) -> bool:
                return x == 0 or math.isclose(x, 1.5)
        """})
        assert active_ids(report) == []


class TestRpr002BroadExcept:
    def test_flags_swallowing_handler(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f():
                try:
                    return 1
                except Exception:
                    return None
        """})
        assert active_ids(report) == ["RPR002"]

    def test_narrow_and_reraising_handlers_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f():
                try:
                    return 1
                except ValueError:
                    return None

            def firewall():
                try:
                    return 1
                except Exception as err:
                    if str(err) == "known":
                        return None
                    raise
        """})
        assert active_ids(report) == []


class TestRpr003Nondeterminism:
    def test_flags_wall_clock_and_global_rng(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            import time
            import numpy as np

            def f():
                return time.time() + np.random.normal()
        """})
        assert active_ids(report) == ["RPR003", "RPR003"]

    def test_flags_random_import(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            import random
        """})
        assert active_ids(report) == ["RPR003"]

    def test_seeded_generator_and_perf_counter_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            import time
            import numpy as np

            def f(seed: int):
                rng = np.random.default_rng(np.random.SeedSequence(seed))
                start = time.perf_counter()
                return rng.normal(), time.perf_counter() - start
        """})
        assert active_ids(report) == []


class TestRpr004SolverParity:
    SOLVER_FUNC = """
        def optimize_thing(x, solver: str = "batch"):
            return x
    """

    def test_flags_uncovered_solver_switch(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/x.py": self.SOLVER_FUNC})
        assert active_ids(report) == ["RPR004"]

    def test_equivalence_coverage_satisfies(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/x.py": self.SOLVER_FUNC,
            "tests/test_fake_equivalence.py": """
                def test_parity():
                    assert optimize_thing(1) == optimize_thing(
                        1, solver="sequential")
            """})
        assert active_ids(report) == []

    def test_flags_noncanonical_default(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def optimize_thing(x, solver: str = "fast"):
                return x
        """})
        assert active_ids(report) == ["RPR004"]
        assert "canonical backends" in report.active[0].message


class TestRpr005UnitSuffix:
    def test_flags_unsuffixed_float_param_and_field(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/device/x.py": """
            from dataclasses import dataclass

            def drive(width: float) -> float:
                return width

            @dataclass
            class Record:
                charge: float
        """})
        assert active_ids(report) == ["RPR005", "RPR005"]

    def test_suffixed_voltage_and_dimensionless_names_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/device/x.py": """
            def drive(width_um: float, vdd: float, vth_n: float,
                      ss_v_per_dec: float, k_gamma: float,
                      body_factor: float, xtol: float) -> float:
                '''Drive at ``width_um`` [um] for threshold ``vth_n``
                [v] and slope ``ss_v_per_dec`` [v/dec] (RPR010 surface:
                the brackets keep this an RPR005-only fixture).'''
                return width_um
        """})
        assert active_ids(report) == []

    def test_only_unit_suffix_packages_are_checked(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f(width: float) -> float:
                return width
        """})
        assert active_ids(report) == []


class TestRpr006PerfRegistry:
    def test_flags_unregistered_counter(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/perf.py": FAKE_PERF,
            "src/repro/analysis/x.py": """
                from repro import perf

                def f():
                    perf.bump("poisson.sloves")
            """})
        assert active_ids(report) == ["RPR006"]

    def test_registered_literal_and_dynamic_prefix_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/perf.py": FAKE_PERF,
            "src/repro/analysis/x.py": """
                from repro import perf

                def f(name: str):
                    perf.bump("poisson.solves")
                    perf.bump(f"cache.{name}.hits")
                    perf.bump("cache." + name + ".misses")
            """})
        assert active_ids(report) == []


class TestRpr007BenchCoverage:
    EXPERIMENT = """
        def experiment(eid, title=""):
            def deco(func):
                return func
            return deco

        @experiment("fig99")
        def run_fig99():
            return None
    """

    def test_flags_unbenchmarked_experiment(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/experiments/x.py": self.EXPERIMENT})
        assert active_ids(report) == ["RPR007"]

    def test_bench_reference_satisfies(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/experiments/x.py": self.EXPERIMENT,
            "benchmarks/test_bench_x.py": """
                def test_bench_fig99(benchmark):
                    benchmark(lambda: "fig99")
            """})
        assert active_ids(report) == []


class TestRpr008MutableState:
    def test_flags_mutable_default_and_module_state(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            memo = {}

            def f(values=[]):
                return values
        """})
        assert active_ids(report) == ["RPR008", "RPR008"]

    def test_constant_style_none_default_and_dunder_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            __all__ = ["f"]
            TABLE = {"a": 1}

            def f(values=None):
                return values or []
        """})
        assert active_ids(report) == []


class TestRpr009MaskedSolveLoop:
    MASKED_LOOP = """
        import numpy as np

        def solve(lo, hi, xtol):
            active = (hi - lo) > xtol
            while np.any(active):
                mid = 0.5 * (lo + hi)
                lo = np.where(active, mid, lo)
                active = (hi - lo) > xtol
            return lo
    """

    def test_flags_engine_package_loop(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/x.py": self.MASKED_LOOP})
        assert active_ids(report) == ["RPR009"]
        assert "repro/numerics" in report.active[0].message

    def test_method_any_spelling_flagged(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/circuit/x.py": """
            def solve(err, tol, step):
                live = err > tol
                while live.any() and step < 80:
                    err = err - 1.0
                    live = err > tol
                    step = step + 1
                return err
        """})
        assert active_ids(report) == ["RPR009"]

    def test_numerics_core_is_exempt(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/numerics/x.py": self.MASKED_LOOP})
        assert active_ids(report) == []

    def test_non_mask_while_loops_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            import numpy as np

            def countdown(n, flags):
                ready = bool(np.any(flags))
                while n > 0:
                    n = n - 1
                return n, ready
        """})
        assert active_ids(report) == []


class TestRpr010ServiceDocstringUnits:
    def test_flags_missing_docstring(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/service/x.py": """
            def leakage(vdd_v: float) -> float:
                return 2.0 * vdd_v
        """})
        assert active_ids(report) == ["RPR010"]
        assert "[v]" in report.active[0].message

    def test_flags_docstring_without_bracketed_unit(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/service/x.py": """
            def leakage(ioff_target_a_per_um: float) -> float:
                '''Leakage at the ioff_target_a_per_um the doping met.'''
                return ioff_target_a_per_um
        """})
        assert active_ids(report) == ["RPR010"]
        assert "[a/um]" in report.active[0].message

    def test_documented_units_pass(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/service/x.py": """
            class Tier:
                def leakage(self, l_poly_nm: float, vdd_v: float) -> float:
                    '''Leakage at gate length ``l_poly_nm`` [nm] and
                    supply ``vdd_v`` [V].'''
                    return l_poly_nm * vdd_v
        """})
        assert active_ids(report) == []

    def test_variability_package_is_a_served_surface(self, tmp_path):
        # The rare-event yield engine joined the RPR010 surface: its
        # unit-suffixed parameters must be documented like service's.
        report = lint_fixture(tmp_path, {
            "src/repro/variability/x.py": """
                def tail(vdd_v: float, t_max_s: float) -> float:
                    '''Failure rate at supply ``vdd_v`` [V].'''
                    return vdd_v * t_max_s
            """})
        assert active_ids(report) == ["RPR010"]
        assert "[s]" in report.active[0].message

    def test_circuit_package_is_a_served_surface(self, tmp_path):
        # The netlist/solver layer joined the RPR010 surface with the
        # batched array characterisations.
        report = lint_fixture(tmp_path, {
            "src/repro/circuit/x.py": """
                def leak(r_keeper_ohms: float) -> float:
                    '''Bitline current through the keeper.'''
                    return 0.3 / r_keeper_ohms
            """})
        assert active_ids(report) == ["RPR010"]
        assert "[ohms]" in report.active[0].message

    def test_other_packages_and_private_names_exempt(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/analysis/x.py": """
                def tabulate(vdd_v: float) -> float:
                    return vdd_v
            """,
            "src/repro/service/y.py": """
                def _helper(vdd_v: float) -> float:
                    return vdd_v

                def info(count: int) -> int:
                    return count
            """})
        assert active_ids(report) == []


class TestRpr011UnitDataflow:
    """Intraprocedural unit inference: mixed arithmetic, rebinds,
    returns.  Fixtures live in ``scaling`` (a dataflow package that is
    neither an RPR005 nor an RPR010 surface, so only the unit-flow
    rules speak)."""

    def test_flags_mixed_dimension_addition(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(vdd_v: float, t_stop_s: float) -> float:
                return vdd_v + t_stop_s
        """})
        assert active_ids(report) == ["RPR011"]
        assert "[v]" in report.active[0].message
        assert "[s]" in report.active[0].message
        assert any("parameter suffix" in step
                   for step in report.active[0].explanation)

    def test_flags_scale_mismatch_between_suffixes(self, tmp_path):
        # Both operands are lengths, but nm vs um differ in scale —
        # the forgotten-conversion bug RPR005 cannot see.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(l_poly_nm: float, l_ov_um: float) -> float:
                return l_poly_nm - l_ov_um
        """})
        assert active_ids(report) == ["RPR011"]

    def test_flags_mixed_unit_comparison(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(l_eff_nm: float, w_um: float) -> bool:
                return l_eff_nm < w_um
        """})
        assert active_ids(report) == ["RPR011"]

    def test_flags_conflicting_rebind(self, tmp_path):
        # volts * amps is watts; binding it to an _ohm name conflicts.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(vdd_v: float, i_on_a: float) -> float:
                r_load_ohm = vdd_v * i_on_a
                return r_load_ohm
        """})
        assert active_ids(report) == ["RPR011"]
        assert "[w]" in report.active[0].message

    def test_flags_return_unit_conflict(self, tmp_path):
        # C_load * V_dd is charge [c], not the energy [j] the function
        # name promises (the missing 0.5*C*V^2 square).
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def switching_energy_j(c_load_f: float, vdd_v: float) -> float:
                return c_load_f * vdd_v
        """})
        assert active_ids(report) == ["RPR011"]
        assert "[j]" in report.active[0].message

    def test_dimensionally_consistent_code_passes(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def rc_delay_s(r_drive_ohm: float, c_load_f: float) -> float:
                tau_s = r_drive_ohm * c_load_f
                return 0.69 * tau_s

            def energy_j(c_load_f: float, vdd_v: float) -> float:
                return 0.5 * c_load_f * vdd_v * vdd_v
        """})
        assert active_ids(report) == []

    def test_pow10_conversion_idiom_passes(self, tmp_path):
        # Scaling by a power-of-ten literal is the unit-conversion
        # idiom: the scale shift is tracked, not flagged.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(t_ox_nm: float) -> float:
                t_ox_cm = t_ox_nm * 1e-7
                return t_ox_cm
        """})
        assert active_ids(report) == []

    def test_small_step_and_margin_idioms_pass(self, tmp_path):
        # 1e-6 * vdd is a perturbation step, not a microvolt bug: a
        # flex (literal-rescaled) value may re-join its dimension at
        # any scale.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(vdd_v: float) -> float:
                h = 1e-6 * vdd_v
                margin = vdd_v * 1e-3
                return (vdd_v + h) - margin
        """})
        assert active_ids(report) == []

    def test_symbol_subscripts_are_not_units(self, tmp_path):
        # phi_f / psi_s are the paper's Greek-letter subscripts
        # (Fermi/surface potential), not farads/seconds.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(phi_f: float, psi_s: float) -> float:
                return phi_f + psi_s
        """})
        assert active_ids(report) == []

    def test_conversion_helpers_are_exempt(self, tmp_path):
        # X_to_Y helpers return scale factors; their suffix names the
        # target unit, so they never seed return-unit inference.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def nm_to_cm(value: float) -> float:
                return value * 1e-7

            def f(l_poly_nm: float) -> float:
                l_poly_cm = l_poly_nm * nm_to_cm(1.0)
                return l_poly_cm
        """})
        assert active_ids(report) == []

    def test_unknown_units_silence_checks(self, tmp_path):
        # Gradual analysis: a name with no unit seed never triggers.
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(alpha: float, vdd_v: float) -> float:
                return alpha + vdd_v
        """})
        assert active_ids(report) == []

    def test_non_dataflow_packages_exempt(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f(vdd_v: float, t_stop_s: float) -> float:
                return vdd_v + t_stop_s
        """})
        assert active_ids(report) == []


class TestRpr012CallSiteUnits:
    """Cross-file call-site checks against harvested function facts."""

    LIB = """
        def loaded(r_ohm_per_um: float) -> float:
            return 2.0 * r_ohm_per_um
    """

    def test_flags_positional_suffix_conflict(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/lib.py": self.LIB,
            "src/repro/scaling/use.py": """
                from .lib import loaded

                def f(c_wire_f_per_um: float) -> float:
                    return loaded(c_wire_f_per_um)
            """})
        assert active_ids(report) == ["RPR012"]
        assert "r_ohm_per_um" in report.active[0].message

    def test_flags_keyword_suffix_conflict(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/lib.py": self.LIB,
            "src/repro/scaling/use.py": """
                from .lib import loaded

                def f(t_stop_s: float) -> float:
                    return loaded(r_ohm_per_um=t_stop_s)
            """})
        assert active_ids(report) == ["RPR012"]

    def test_docstring_bracket_declares_the_unit(self, tmp_path):
        # The parameter has no suffix; its unit comes from the RPR010
        # docstring bracket, harvested as a cross-file fact.
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/lib.py": """
                def widened(width: float) -> float:
                    '''Scale up the transistor ``width`` [um].'''
                    return 2.0 * width
            """,
            "src/repro/scaling/use.py": """
                from .lib import widened

                def f(t_stop_s: float) -> float:
                    return widened(t_stop_s)
            """})
        assert active_ids(report) == ["RPR012"]
        assert "[um]" in report.active[0].message

    def test_matching_argument_passes(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/lib.py": self.LIB,
            "src/repro/scaling/use.py": """
                from .lib import loaded

                def f(r_wire_ohm_per_um: float) -> float:
                    return loaded(r_wire_ohm_per_um)
            """})
        assert active_ids(report) == []

    def test_unknown_argument_is_silent(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/scaling/lib.py": self.LIB,
            "src/repro/scaling/use.py": """
                from .lib import loaded

                def f(resistance: float) -> float:
                    return loaded(resistance)
            """})
        assert active_ids(report) == []


class TestUnitLattice:
    """Algebra of the dimension lattice behind RPR011/RPR012."""

    def test_product_volts_times_amps_is_watts(self):
        from repro.lint.units_dataflow import (parse_name_unit,
                                               render_unit, token_units)
        watts = parse_name_unit("vdd_v").mul(parse_name_unit("i_on_a"))
        assert watts == token_units()["w"]
        assert render_unit(watts) == "[w]"

    def test_quotient_chain_f_v_over_a_is_seconds(self):
        from repro.lint.units_dataflow import token_units
        t = token_units()
        assert t["f"].mul(t["v"]).div(t["a"]) == t["s"]
        assert t["ohm"].mul(t["f"]) == t["s"]

    def test_per_compound_parses_as_quotient(self):
        from repro.lint.units_dataflow import (parse_name_unit,
                                               render_unit, token_units)
        t = token_units()
        unit = parse_name_unit("i_off_a_per_um")
        assert unit == t["a"].div(t["um"])
        assert render_unit(unit) == "[a/um]"

    def test_scale_distinguishes_nm_from_um(self):
        from repro.lint.units_dataflow import token_units
        t = token_units()
        assert t["nm"].dims == t["um"].dims
        assert t["nm"] != t["um"]

    def test_shift_scale_models_pow10_literals(self):
        # value_nm * 1e-7 stores centimetres: 100 nm -> 1e-5 cm.
        from repro.lint.units_dataflow import token_units
        t = token_units()
        assert t["nm"].shift_scale(-7) == t["cm"]

    def test_integer_powers_and_roots(self):
        from repro.lint.units_dataflow import token_units
        t = token_units()
        assert t["cm"].pow_int(2) == t["cm2"]
        assert t["cm2"].root(2) == t["cm"]
        assert t["nm"].root(2) is None  # 10^-9 has no exact sqrt

    def test_name_parsing_polarity(self):
        from repro.lint.units_dataflow import parse_name_unit, token_units
        t = token_units()
        assert parse_name_unit("vth_n") == t["v"]  # voltage convention
        assert parse_name_unit("c_load_f") == t["f"]
        assert parse_name_unit("m") is None        # bare paper symbol
        assert parse_name_unit("_m") is None       # private name
        assert parse_name_unit("phi_f") is None    # Greek subscript
        assert parse_name_unit("xtol") is None     # no suffix

    def test_bracket_parsing(self):
        from repro.lint.units_dataflow import parse_bracket_unit, token_units
        t = token_units()
        assert parse_bracket_unit("V") == t["v"]
        assert parse_bracket_unit("a/um") == t["a"].div(t["um"])
        assert parse_bracket_unit("furlong") is None


class TestBaselineSchema2:
    def test_artefact_reference_polarity(self):
        from repro.lint.baseline import artefact_reference
        assert artefact_reference(
            "netlist convention; see src/repro/circuit/netlist.py")
        assert artefact_reference("per Eq. 9 of the paper")
        assert artefact_reference("documented in the add_vsource docstring")
        assert artefact_reference("covered by test_circuit_netlist")
        assert artefact_reference("TODO: justify") is None
        assert artefact_reference("intentional") is None
        assert artefact_reference("") is None

    def test_load_rejects_placeholder_justification(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({
            "schema": 2,
            "findings": [{"fingerprint": "abc", "rule": "RPR001",
                          "path": "x.py", "line_text": "x == 1.5",
                          "justification": "TODO: justify"}],
        }))
        with pytest.raises(ParameterError, match="artefact"):
            Baseline.load(path)

    def test_load_rejects_schema_one(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"schema": 1, "findings": []}))
        with pytest.raises(ParameterError, match="schema"):
            Baseline.load(path)


class TestExplainCli:
    FIXTURE = {"src/repro/scaling/x.py": """
        def f(vdd_v: float, t_stop_s: float) -> float:
            return vdd_v + t_stop_s
    """}

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        make_repo(tmp_path, self.FIXTURE)
        code = run_lint_command(root=str(tmp_path), explain="RPR999")
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explain_prints_chain(self, tmp_path, capsys):
        make_repo(tmp_path, self.FIXTURE)
        code = run_lint_command(root=str(tmp_path), explain="RPR011")
        out = capsys.readouterr().out
        assert code == 0
        assert "RPR011: mixed-unit arithmetic" in out
        assert "mixed-unit arithmetic" in out
        assert "fingerprint:" in out
        assert "parameter suffix" in out

    def test_selector_filters_findings(self, tmp_path, capsys):
        make_repo(tmp_path, self.FIXTURE)
        code = run_lint_command(root=str(tmp_path), explain="RPR011",
                                paths=["no/such/file.py:99"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no RPR011 findings" in out

    def test_rule_without_findings_exits_1(self, tmp_path, capsys):
        make_repo(tmp_path, self.FIXTURE)
        code = run_lint_command(root=str(tmp_path), explain="RPR001")
        assert code == 1
        capsys.readouterr()


class TestSarifOutput:
    def test_sarif_log_shape_and_suppressions(self, tmp_path, capsys):
        make_repo(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 1.5

            def g(x: float) -> bool:
                return x == 2.5  # repro: noqa[RPR001] fixture
        """})
        code = run_lint_command(root=str(tmp_path),
                                output_format="sarif")
        log = json.loads(capsys.readouterr().out)
        assert code == 1
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RPR000" in rule_ids and "RPR012" in rule_ids
        results = run["results"]
        assert len(results) == 2
        active = [r for r in results if "suppressions" not in r]
        noqa = [r for r in results if "suppressions" in r]
        assert len(active) == len(noqa) == 1
        assert active[0]["ruleId"] == "RPR001"
        location = active[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "src/repro/analysis/x.py")
        assert location["region"]["startLine"] == 3
        assert noqa[0]["suppressions"][0]["kind"] == "inSource"
        assert active[0]["partialFingerprints"][
            "reproLintFingerprint/v1"]

    def test_baselined_findings_marked_external(self, tmp_path, capsys):
        make_repo(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 1.5
        """})
        run_lint_command(root=str(tmp_path), update_baseline=True)
        capsys.readouterr()
        baseline_file = tmp_path / "lint-baseline.json"
        payload = json.loads(baseline_file.read_text())
        for entry in payload["findings"]:
            entry["justification"] = ("fixture equality; see "
                                      "test_lint_rules.py")
        baseline_file.write_text(json.dumps(payload))
        code = run_lint_command(root=str(tmp_path),
                                output_format="sarif")
        log = json.loads(capsys.readouterr().out)
        assert code == 0
        result = log["runs"][0]["results"][0]
        assert result["suppressions"][0]["kind"] == "external"


class TestSuppressionLayer:
    OFFENDING = """
        def f(x: float) -> bool:
            return x == 1.5  # repro: noqa[RPR001] intentional fixture
    """

    def test_noqa_suppresses_named_rule(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/analysis/x.py": self.OFFENDING})
        assert active_ids(report) == []
        assert [f.rule_id for f in report.findings
                if f.suppressed] == ["RPR001"]

    def test_bare_noqa_is_not_honoured(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 1.5  # repro: noqa
        """})
        assert active_ids(report) == ["RPR001"]

    def test_noqa_covers_unit_flow_rules(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/scaling/x.py": """
            def f(vdd_v: float, t_stop_s: float) -> float:
                return vdd_v + t_stop_s  # repro: noqa[RPR011] fixture
        """})
        assert active_ids(report) == []
        assert [f.rule_id for f in report.findings
                if f.suppressed] == ["RPR011"]

    def test_noqa_for_other_rule_does_not_apply(self, tmp_path):
        report = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 1.5  # repro: noqa[RPR008] wrong rule
        """})
        assert active_ids(report) == ["RPR001"]


class TestBaselineLayer:
    FILES = {"src/repro/analysis/x.py": """
        def f(x: float) -> bool:
            return x == 1.5
    """}

    def test_round_trip_silences_then_goes_stale(self, tmp_path):
        first = lint_fixture(tmp_path, self.FILES)
        assert active_ids(first) == ["RPR001"]

        baseline = Baseline.from_findings(first.findings)
        for entry in baseline.entries.values():
            # Schema 2: load() rejects the TODO placeholder, so the
            # reviewer step is simulated with an artefact citation.
            entry["justification"] = ("intentional fixture equality; "
                                      "see test_lint_rules.py")
        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)

        second = lint_fixture(tmp_path, self.FILES, baseline=reloaded)
        assert active_ids(second) == []
        assert [f.rule_id for f in second.findings
                if f.baselined] == ["RPR001"]

        # Fix the code: the entry stops matching and is reported stale.
        fixed = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 0
        """}, baseline=reloaded)
        assert active_ids(fixed) == []
        assert len(fixed.stale_baseline) == 1
        assert not fixed.clean

    def test_baseline_grandfathers_unit_flow_findings(self, tmp_path):
        files = {"src/repro/scaling/x.py": """
            def f(vdd_v: float, t_stop_s: float) -> float:
                return vdd_v + t_stop_s
        """}
        first = lint_fixture(tmp_path, files)
        assert active_ids(first) == ["RPR011"]
        baseline = Baseline.from_findings(first.findings)
        for entry in baseline.entries.values():
            entry["justification"] = ("fixture mix; see "
                                      "test_lint_rules.py")
        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        second = lint_fixture(tmp_path, files,
                              baseline=Baseline.load(path))
        assert active_ids(second) == []
        assert [f.rule_id for f in second.findings
                if f.baselined] == ["RPR011"]

    def test_fingerprint_survives_line_drift(self, tmp_path):
        plain = lint_fixture(tmp_path, self.FILES)
        shifted = lint_fixture(tmp_path, {"src/repro/analysis/x.py": """
            GAP = 1


            def f(x: float) -> bool:
                return x == 1.5
        """})
        assert (plain.findings[0].fingerprint
                == shifted.findings[0].fingerprint)
        assert plain.findings[0].line != shifted.findings[0].line

    def test_missing_justification_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({
            "schema": 2,
            "findings": [{"fingerprint": "abc", "rule": "RPR001",
                          "path": "x.py", "line_text": "x == 1.5",
                          "justification": ""}],
        }))
        with pytest.raises(ParameterError, match="justification"):
            Baseline.load(path)


class TestCliAndRepo:
    def test_repository_is_lint_clean(self):
        report = lint_repository(REPO_ROOT)
        assert report.clean, report.render_text()

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        make_repo(tmp_path, {"src/repro/analysis/x.py": """
            def f(x: float) -> bool:
                return x == 1.5
        """})
        code = run_lint_command(root=str(tmp_path), output_format="json")
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["schema"] == 1
        assert payload["active"] == 1
        assert payload["findings"][0]["rule"] == "RPR001"

        code = run_lint_command(root=str(tmp_path),
                                update_baseline=True)
        capsys.readouterr()
        assert code == 0
        baseline_file = tmp_path / "lint-baseline.json"
        assert baseline_file.exists()

        # The fresh baseline carries the 'TODO: justify' placeholder,
        # which schema 2 refuses to load — the unreviewed entry fails
        # the next run with a usage error.
        code = run_lint_command(root=str(tmp_path))
        err = capsys.readouterr().err
        assert code == 2
        assert "artefact" in err

        # Filling in an artefact-citing justification (the reviewer
        # step) makes the baseline effective.
        payload = json.loads(baseline_file.read_text())
        for entry in payload["findings"]:
            entry["justification"] = ("fixture equality; covered by "
                                      "test_lint_rules.py")
        baseline_file.write_text(json.dumps(payload))
        code = run_lint_command(root=str(tmp_path))
        out = capsys.readouterr().out
        assert code == 0
        assert "1 baselined" in out

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        code = run_lint_command(root=str(tmp_path))  # no src/repro
        assert code == 2
        make_repo(tmp_path, {})
        code = run_lint_command(paths=["no/such/file.py"],
                                root=str(tmp_path))
        assert code == 2
        capsys.readouterr()

    def test_lint_subcommand_wired_into_main(self, capsys):
        code = main(["lint", "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_syntax_error_reported_as_rpr000(self, tmp_path):
        report = lint_fixture(tmp_path, {
            "src/repro/analysis/x.py": "def broken(:\n"})
        assert [f.rule_id for f in report.active] == ["RPR000"]

    def test_rule_catalogue_covers_all_twelve(self):
        ids = [row[0] for row in rule_catalogue()]
        assert ids == ([f"RPR00{i}" for i in range(1, 10)]
                       + ["RPR010", "RPR011", "RPR012"])
