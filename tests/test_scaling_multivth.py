"""Tests for the multi-V_th flavour derivation."""

import pytest

from repro.errors import ParameterError
from repro.scaling.multivth import FLAVOURS, derive_flavours, drive_spread
from repro.scaling.roadmap import node_by_name


@pytest.fixture(scope="module")
def menu():
    return derive_flavours(node_by_name("45nm"), 47.0)


class TestDeriveFlavours:
    def test_all_flavours_present(self, menu):
        assert set(menu) == set(FLAVOURS)

    def test_vth_ordering(self, menu):
        assert (menu["lvt"].vth_mv() < menu["rvt"].vth_mv()
                < menu["hvt"].vth_mv())

    def test_leakage_targets_met(self, menu):
        for name, multiplier in FLAVOURS.items():
            measured = menu[name].leakage_a_per_um(0.30)
            assert measured == pytest.approx(100e-12 * multiplier, rel=0.02)

    def test_drive_ordering(self, menu):
        assert (menu["lvt"].drive_a_per_um(0.25)
                > menu["rvt"].drive_a_per_um(0.25)
                > menu["hvt"].drive_a_per_um(0.25))

    def test_same_gate_length(self, menu):
        lengths = {f.design.nfet.geometry.l_poly_nm for f in menu.values()}
        assert len(lengths) == 1

    def test_pfet_built_too(self, menu):
        for flavour in menu.values():
            assert flavour.design.pfet.geometry.width_um == pytest.approx(2.0)

    def test_custom_flavours(self):
        node = node_by_name("45nm")
        menu = derive_flavours(node, 47.0, flavours={"only": 1.0})
        assert set(menu) == {"only"}

    def test_rejects_bad_target(self):
        with pytest.raises(ParameterError):
            derive_flavours(node_by_name("45nm"), 47.0,
                            base_ioff_a_per_um=0.0)

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ParameterError):
            derive_flavours(node_by_name("45nm"), 47.0,
                            flavours={"bad": -1.0})


class TestDriveSpread:
    def test_subthreshold_spread_tracks_leakage_window(self, menu):
        spread = drive_spread(menu, 0.25)
        leak_window = (menu["lvt"].leakage_a_per_um(0.25)
                       / menu["hvt"].leakage_a_per_um(0.25))
        assert 0.3 * leak_window < spread <= 1.2 * leak_window

    def test_spread_compresses_toward_nominal(self, menu):
        assert drive_spread(menu, 1.0) < drive_spread(menu, 0.25)

    def test_needs_lvt_and_hvt(self, menu):
        with pytest.raises(ParameterError):
            drive_spread({"rvt": menu["rvt"]}, 0.25)
