"""Tests for the node roadmap."""

import pytest

from repro.errors import ParameterError
from repro.scaling.roadmap import (
    IOFF_SUB_VTH_A_PER_UM,
    SUPER_VTH_ROADMAP,
    node_by_name,
    roadmap_nodes,
    sub_vth_ioff_target,
)


class TestRoadmapContents:
    def test_primary_nodes(self):
        names = [n.name for n in roadmap_nodes()]
        assert names == ["90nm", "65nm", "45nm", "32nm"]

    def test_130nm_optional(self):
        names = [n.name for n in roadmap_nodes(include_130nm=True)]
        assert names[0] == "130nm"
        assert len(names) == 5

    def test_paper_l_poly_values(self):
        expected = {"90nm": 65.0, "65nm": 46.0, "45nm": 32.0, "32nm": 22.0}
        for name, l_poly in expected.items():
            assert node_by_name(name).l_poly_nm == l_poly

    def test_paper_t_ox_values(self):
        expected = {"90nm": 2.10, "65nm": 1.89, "45nm": 1.70, "32nm": 1.53}
        for name, t_ox in expected.items():
            assert node_by_name(name).t_ox_nm == t_ox

    def test_vdd_steps_100mv(self):
        nodes = roadmap_nodes()
        vdds = [n.vdd_nominal for n in nodes]
        assert vdds == [1.2, 1.1, 1.0, 0.9]

    def test_ioff_grows_25_percent(self):
        nodes = roadmap_nodes()
        for a, b in zip(nodes, nodes[1:]):
            assert (b.ioff_target_a_per_um / a.ioff_target_a_per_um
                    == pytest.approx(1.25, rel=0.01))

    def test_l_poly_shrinks_about_30_percent(self):
        nodes = roadmap_nodes()
        for a, b in zip(nodes, nodes[1:]):
            assert b.l_poly_nm / a.l_poly_nm == pytest.approx(0.70, abs=0.02)

    def test_t_ox_shrinks_about_10_percent(self):
        nodes = roadmap_nodes()
        for a, b in zip(nodes, nodes[1:]):
            assert b.t_ox_nm / a.t_ox_nm == pytest.approx(0.90, abs=0.01)

    def test_generation_indices(self):
        assert node_by_name("90nm").generation == 0
        assert node_by_name("32nm").generation == 3
        assert node_by_name("130nm").generation == -1


class TestLookups:
    def test_unknown_node(self):
        with pytest.raises(ParameterError):
            node_by_name("22nm")

    def test_sub_vth_target_constant(self):
        for node in SUPER_VTH_ROADMAP:
            assert sub_vth_ioff_target(node) == IOFF_SUB_VTH_A_PER_UM
