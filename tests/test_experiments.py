"""Integration tests: every registered experiment runs and its paper
claims hold.

The fast experiments are asserted individually so failures localise;
the full sweep is covered by the benchmark suite.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import experiment_ids, list_experiments, run_experiment

#: Experiments cheap enough to run inside the unit-test suite.
FAST_EXPERIMENTS = (
    "table1", "table2", "table3",
    "fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
    "ablation_halo", "ablation_leakage", "ablation_tox",
)


class TestRegistry:
    def test_all_expected_ids_registered(self):
        ids = set(experiment_ids())
        expected = {"table1", "table2", "table3"} | {
            f"fig{i}" for i in range(2, 13)
        } | {"ablation_tox", "ablation_halo", "ablation_leakage",
             "ablation_analytic"}
        assert expected <= ids

    def test_listing_has_titles(self):
        for eid, title in list_experiments():
            assert eid
            assert title

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
def test_experiment_claims_hold(experiment_id):
    result = run_experiment(experiment_id)
    assert result.experiment_id == experiment_id
    failing = [c.claim for c in result.comparisons if not c.holds]
    assert not failing, f"claims failed: {failing}"


def test_table2_has_four_nodes():
    result = run_experiment("table2")
    assert len(result.rows) == 4


def test_fig9_has_four_series():
    result = run_experiment("fig9")
    assert len(result.series) == 4


def test_fig2_render_smoke():
    text = run_experiment("fig2").render()
    assert "S_S" in text
    assert "paper vs measured" in text
