"""Tests for the energy-delay Pareto exploration."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.scaling.pareto import (
    ParetoPoint,
    _pareto_filter,
    dominance_fraction,
    sweep_design,
)


class TestParetoFilter:
    def test_removes_dominated(self):
        points = [
            ParetoPoint(0.2, 1.0, 5.0),
            ParetoPoint(0.3, 2.0, 6.0),    # slower AND higher energy
            ParetoPoint(0.4, 3.0, 2.0),
        ]
        frontier = _pareto_filter(points)
        assert len(frontier) == 2
        assert frontier[0].delay_s == 1.0
        assert frontier[1].energy_j == 2.0

    def test_keeps_all_when_efficient(self):
        points = [ParetoPoint(0.2, 1.0, 5.0), ParetoPoint(0.3, 2.0, 4.0),
                  ParetoPoint(0.4, 3.0, 3.0)]
        assert len(_pareto_filter(points)) == 3

    def test_frontier_monotone(self):
        rng = np.random.default_rng(5)
        points = [ParetoPoint(0.0, float(d), float(e))
                  for d, e in rng.uniform(1.0, 10.0, (50, 2))]
        frontier = _pareto_filter(points)
        delays = [p.delay_s for p in frontier]
        energies = [p.energy_j for p in frontier]
        assert all(b > a for a, b in zip(delays, delays[1:]))
        assert all(b < a for a, b in zip(energies, energies[1:]))


class TestSweepDesign:
    def test_sweep_produces_curve(self, sub_family):
        curve = sweep_design(sub_family.design("45nm"), n_points=9)
        assert len(curve.points) == 9
        assert 2 <= len(curve.frontier) <= 9

    def test_delay_falls_with_vdd(self, sub_family):
        curve = sweep_design(sub_family.design("45nm"), n_points=9)
        delays = [p.delay_s for p in curve.points]
        assert all(b < a for a, b in zip(delays, delays[1:]))

    def test_energy_at_delay_interpolates(self, sub_family):
        curve = sweep_design(sub_family.design("45nm"), n_points=9)
        mid = np.sqrt(curve.frontier[0].delay_s
                      * curve.frontier[-1].delay_s)
        value = curve.energy_at_delay(float(mid))
        energies = [p.energy_j for p in curve.frontier]
        assert min(energies) <= value <= max(energies)

    def test_energy_at_delay_out_of_range(self, sub_family):
        curve = sweep_design(sub_family.design("45nm"), n_points=9)
        with pytest.raises(ParameterError):
            curve.energy_at_delay(1e6)

    def test_rejects_bad_range(self, sub_family):
        with pytest.raises(ParameterError):
            sweep_design(sub_family.design("45nm"), vdd_lo=0.5, vdd_hi=0.2)


class TestDominance:
    def test_sub_vth_dominates_majority_at_32nm(self, super_family,
                                                sub_family):
        sup = sweep_design(super_family.design("32nm"), n_points=13)
        sub = sweep_design(sub_family.design("32nm"), n_points=13)
        assert dominance_fraction(sub, sup) > 0.5

    def test_self_dominance_is_zero(self, sub_family):
        curve = sweep_design(sub_family.design("45nm"), n_points=9)
        assert dominance_fraction(curve, curve) == 0.0
