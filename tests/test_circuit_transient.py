"""Tests for the transient switching engine."""

import numpy as np
import pytest

from repro.circuit.transient import propagation_delay, switch_event
from repro.errors import ParameterError


class TestSwitchEvent:
    def test_falling_transition(self, inverter_sub):
        c_load = inverter_sub.load_capacitance(1)
        result = switch_event(inverter_sub, c_load, falling=True)
        assert result.falling
        assert result.delay_s > 0.0
        # Output must have crossed the midpoint.
        assert result.vout_v[-1] <= 0.5 * inverter_sub.vdd + 1e-6

    def test_rising_transition(self, inverter_sub):
        c_load = inverter_sub.load_capacitance(1)
        result = switch_event(inverter_sub, c_load, falling=False)
        assert result.vout_v[-1] >= 0.5 * inverter_sub.vdd - 1e-6

    def test_bigger_load_slower(self, inverter_sub):
        c = inverter_sub.load_capacitance(1)
        t1 = switch_event(inverter_sub, c, falling=True).delay_s
        t2 = switch_event(inverter_sub, 3.0 * c, falling=True).delay_s
        assert t2 == pytest.approx(3.0 * t1, rel=0.15)

    def test_rejects_nonpositive_load(self, inverter_sub):
        with pytest.raises(ParameterError):
            switch_event(inverter_sub, 0.0, falling=True)


class TestPropagationDelay:
    def test_average_of_edges(self, inverter_sub):
        c = inverter_sub.load_capacitance(1)
        t_hl = switch_event(inverter_sub, c, falling=True).delay_s
        t_lh = switch_event(inverter_sub, c, falling=False).delay_s
        tp = propagation_delay(inverter_sub, c)
        assert tp == pytest.approx(0.5 * (t_hl + t_lh), rel=1e-6)

    def test_nominal_much_faster_than_subthreshold(self, inverter_sub,
                                                   inverter_nominal):
        c_sub = inverter_sub.load_capacitance(1)
        c_nom = inverter_nominal.load_capacitance(1)
        t_sub = propagation_delay(inverter_sub, c_sub)
        t_nom = propagation_delay(inverter_nominal, c_nom)
        assert t_sub > 50.0 * t_nom

    def test_exponential_sensitivity_to_vdd(self, inverter_sub):
        # Lowering a sub-threshold supply by 50 mV slows the gate by
        # several x (the exponential delay dependence of Eq. 5).
        lower = inverter_sub.with_vdd(inverter_sub.vdd - 0.05)
        c1 = inverter_sub.load_capacitance(1)
        c2 = lower.load_capacitance(1)
        t1 = propagation_delay(inverter_sub, c1)
        t2 = propagation_delay(lower, c2)
        assert t2 > 2.0 * t1
