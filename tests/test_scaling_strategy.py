"""Tests for the DeviceDesign / DeviceFamily containers."""

import pytest

from repro.errors import ParameterError
from repro.scaling.strategy import DeviceFamily


class TestDeviceDesign:
    def test_inverter_uses_design_vdd(self, super_family):
        design = super_family.designs[0]
        assert design.inverter().vdd == pytest.approx(design.vdd)

    def test_inverter_override_vdd(self, super_family):
        design = super_family.designs[0]
        assert design.inverter(0.25).vdd == pytest.approx(0.25)

    def test_load_capacitance_positive(self, super_family):
        assert super_family.designs[0].load_capacitance() > 0.0

    def test_summary_consistency(self, super_family):
        design = super_family.designs[0]
        s = design.summary()
        assert s["l_poly_nm"] == pytest.approx(design.nfet.geometry.l_poly_nm)
        assert s["vdd"] == pytest.approx(design.node.vdd_nominal)


class TestDeviceFamily:
    def test_node_names(self, super_family):
        assert super_family.node_names() == ("90nm", "65nm", "45nm", "32nm")

    def test_lookup(self, super_family):
        design = super_family.design("45nm")
        assert design.node.name == "45nm"

    def test_lookup_missing(self, super_family):
        with pytest.raises(ParameterError):
            super_family.design("22nm")

    def test_table_rows(self, super_family):
        rows = super_family.table_rows()
        assert len(rows) == 4
        assert all("ss_mv_per_dec" in row for row in rows)

    def test_empty_family_rejected(self):
        with pytest.raises(ParameterError):
            DeviceFamily(strategy="x", designs=())
