"""Scalar/batch parity for the corner-grid and DVS flow re-routes.

PR 6 moves the Table 2/3 reporting (``table_rows``), the corner
experiments (``corner_grid`` / ``ff_ss_delay_spread``) and the DVS
energy curve (``dvs_curve`` / ``vdd_for_throughput_batch``) onto
``ParameterStack`` grids solved through the shared root-solve core in
:mod:`repro.numerics`.  Each re-route keeps its per-design scalar path
as a ``solver="sequential"`` oracle; this suite pins the agreement
(lint rule RPR004 statically requires every ``solver=`` switch to be
exercised here or in a sibling ``test_*equivalence*`` suite).
"""

import numpy as np
import pytest

from repro.circuit.chain import InverterChain
from repro.circuit.dvs import (
    chain_rate_batch,
    chain_rate_hz,
    dvs_curve,
    energy_per_cycle_at_throughput,
    vdd_for_throughput,
    vdd_for_throughput_batch,
)
from repro.circuit.inverter import Inverter
from repro.device.corners import (
    Corner,
    CornerSpec,
    at_corner,
    corner_grid,
    ff_ss_delay_spread,
)
from repro.device.mosfet import nfet, pfet
from repro.errors import ParameterError
from repro.scaling.roadmap import node_by_name
from repro.scaling.strategy import DeviceDesign, DeviceFamily

RTOL = 1e-9

CORNERS = (Corner.FF, Corner.TT, Corner.SS)


def _toy_family() -> DeviceFamily:
    """A two-node family built straight from roadmap inputs.

    The devices use each node's own gate length/oxide (reference
    defaults to L_poly), matching how the optimiser flows construct
    designs — which is the contract ``DeviceFamily.nfet_stack``
    reconstructs.
    """
    designs = []
    for name, n_sub, halo, vdd in (("90nm", 1.2e18, 1.5e18, 0.30),
                                   ("45nm", 2.6e18, 1.8e18, 0.25)):
        node = node_by_name(name)
        designs.append(DeviceDesign(
            node=node,
            nfet=nfet(node.l_poly_nm, node.t_ox_nm, n_sub, halo),
            pfet=pfet(node.l_poly_nm, node.t_ox_nm, n_sub, halo),
            strategy="toy", vdd=vdd,
        ))
    return DeviceFamily(strategy="toy", designs=tuple(designs))


class TestTableRowsParity:
    def test_batch_matches_sequential(self):
        family = _toy_family()
        batch = family.table_rows(solver="batch")
        seq = family.table_rows(solver="sequential")
        assert len(batch) == len(seq) == 2
        for row_b, row_s in zip(batch, seq):
            assert row_b.keys() == row_s.keys()
            for key in row_s:
                if key == "vth_sat_mv":
                    # Batch bisection (xtol=1e-9) vs memoised scalar
                    # brentq (xtol=1e-6): agreement is bounded by the
                    # scalar solver's own tolerance.
                    assert row_b[key] == pytest.approx(
                        row_s[key], abs=2e-3)
                else:
                    assert row_b[key] == pytest.approx(
                        row_s[key], rel=RTOL)

    def test_rejects_unknown_solver(self):
        with pytest.raises(ParameterError):
            _toy_family().table_rows(solver="magic")


class TestCornerGridParity:
    def test_grid_matches_scalar_corners(self, nfet90):
        other = nfet(32, 1.53, 3.0e18, 1.8e18)
        grid = corner_grid((nfet90, other), CORNERS)
        vth = grid.vth(0.25)
        ion = grid.i_on_per_um(0.25)
        ioff = grid.i_off_per_um(0.25)
        ss = grid.ss_v_per_dec
        for i, dev in enumerate((nfet90, other)):
            for j, corner in enumerate(CORNERS):
                lane = i * len(CORNERS) + j
                shifted = at_corner(dev, corner)
                assert vth[lane] == pytest.approx(
                    shifted.vth(0.25), rel=RTOL)
                assert ion[lane] == pytest.approx(
                    shifted.i_on_per_um(0.25), rel=RTOL)
                assert ioff[lane] == pytest.approx(
                    shifted.i_off_per_um(0.25), rel=RTOL)
                assert ss[lane] == pytest.approx(
                    shifted.ss_v_per_dec, rel=RTOL)

    def test_tt_grid_is_plain_stacked_evaluation(self, nfet90):
        metrics = corner_grid((nfet90,), (Corner.TT,))
        assert metrics.vth(0.25)[0] == pytest.approx(
            nfet90.vth(0.25), rel=RTOL)

    def test_custom_spec_flows_through(self, nfet90):
        spec = CornerSpec(tox_sigma_pct=2.0, doping_sigma_pct=8.0)
        grid = corner_grid((nfet90,), CORNERS, spec)
        scalar = [at_corner(nfet90, c, spec).vth(0.25) for c in CORNERS]
        assert grid.vth(0.25) == pytest.approx(np.array(scalar), rel=RTOL)

    def test_offset_devices_rejected(self, nfet90):
        from dataclasses import replace
        shifted = replace(nfet90, vth_offset_v=0.05)
        with pytest.raises(ParameterError):
            corner_grid((shifted,), CORNERS)

    def test_empty_grid_rejected(self, nfet90):
        with pytest.raises(ParameterError):
            corner_grid((), CORNERS)
        with pytest.raises(ParameterError):
            corner_grid((nfet90,), ())

    def test_ff_ss_delay_spread_solver_parity(self, nfet90):
        batch = ff_ss_delay_spread(nfet90, 0.25, solver="batch")
        seq = ff_ss_delay_spread(nfet90, 0.25, solver="sequential")
        assert batch == pytest.approx(seq, rel=RTOL)
        with pytest.raises(ParameterError):
            ff_ss_delay_spread(nfet90, 0.25, solver="magic")


@pytest.fixture(scope="module")
def dvs_chain():
    n = nfet(45, 1.7, 2.4e18, 1.4e18)
    p = pfet(45, 1.7, 2.4e18, 1.4e18, width_um=2.0)
    return InverterChain(Inverter(nfet=n, pfet=p, vdd=0.3),
                         n_stages=30, activity=0.1)


class TestDvsParity:
    def test_rate_kernel_matches_scalar(self, dvs_chain):
        grid = np.array([0.12, 0.25, 0.40, 0.80, 1.20])
        batch = chain_rate_batch(dvs_chain, grid)
        for v, r in zip(grid, batch):
            assert r == pytest.approx(
                chain_rate_hz(dvs_chain, float(v)), rel=RTOL)

    def test_vdd_solve_returns_hi_end_per_lane(self, dvs_chain):
        f_ref = chain_rate_hz(dvs_chain, 0.3)
        targets = f_ref * np.array([0.5, 1.0, 2.0, 5.0])
        batch = vdd_for_throughput_batch(dvs_chain, targets)
        seq = np.array([vdd_for_throughput(dvs_chain, float(f))
                        for f in targets])
        # Bitwise: both walk the identical bracket sequence and return
        # the hi end, and the batched rate kernel reproduces the scalar
        # chain rate exactly.
        assert np.array_equal(batch, seq)

    def test_already_met_targets_return_vdd_lo(self, dvs_chain):
        slow = np.array([1e-3 * chain_rate_hz(dvs_chain, 0.10)])
        assert vdd_for_throughput_batch(dvs_chain, slow)[0] == 0.10

    def test_unreachable_target_raises(self, dvs_chain):
        too_fast = np.array([10.0 * chain_rate_hz(dvs_chain, 1.2)])
        with pytest.raises(ParameterError):
            vdd_for_throughput_batch(dvs_chain, too_fast)

    def test_dvs_curve_solver_parity(self, dvs_chain):
        mep = dvs_chain.minimum_energy_point()
        f_vmin = chain_rate_hz(dvs_chain, mep.vmin)
        targets = f_vmin * np.array([0.05, 0.5, 1.0, 4.0, 16.0])
        for gated in (False, True):
            batch = dvs_curve(dvs_chain, targets, mep, power_gated=gated)
            seq = dvs_curve(dvs_chain, targets, mep, power_gated=gated,
                            solver="sequential")
            assert batch == pytest.approx(seq, rel=RTOL)

    def test_dvs_curve_matches_operating_points(self, dvs_chain):
        mep = dvs_chain.minimum_energy_point()
        f_vmin = chain_rate_hz(dvs_chain, mep.vmin)
        targets = f_vmin * np.array([0.2, 2.0])
        curve = dvs_curve(dvs_chain, targets, mep)
        for f, e in zip(targets, curve):
            point = energy_per_cycle_at_throughput(dvs_chain, float(f), mep)
            assert e == pytest.approx(point.energy_j, rel=RTOL)
        with pytest.raises(ParameterError):
            dvs_curve(dvs_chain, targets, mep, solver="magic")
