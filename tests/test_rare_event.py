"""Tests for the rare-event yield engine (QMC streams + IS estimator).

The estimator-level tests run on *analytic* failure sets (half-planes
in the standardised offset space) whose probabilities are exact normal
tail masses, so unbiasedness and chunk-invariance are checked against
ground truth rather than against another sampler.  A handful of tests
drive the physical indicators on the shared inverter fixtures.
"""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.variability import (
    FailurePoint,
    PseudoNormalStream,
    SobolNormalStream,
    cell_failure_rate,
    estimate_failure_probability,
    failure_indicator,
    failure_probability,
    failure_rate_curve,
    find_failure_shift,
    qmc_vth_offsets,
    sigma_level,
)
from repro.variability.sampler import MC_BLOCK_TRIALS


def half_plane(beta, direction=(1.0, 0.0)):
    """Failure set {u : u . d > beta}; exact probability ndtr(-beta)."""
    d = np.asarray(direction) / np.linalg.norm(direction)

    def indicator(u):
        return np.asarray(u) @ d > beta

    return indicator


class TestStreams:
    @pytest.mark.parametrize("stream_cls",
                             [SobolNormalStream, PseudoNormalStream])
    def test_index_addressing_is_chunk_invariant(self, stream_cls):
        stream = stream_cls(seed=11)
        whole = stream.take(0, 96)
        parts = np.concatenate([stream.take(0, 13), stream.take(13, 51),
                                stream.take(64, 32)])
        np.testing.assert_array_equal(whole, parts)

    def test_pseudo_stream_invariant_across_block_boundary(self):
        stream = PseudoNormalStream(seed=3)
        start = MC_BLOCK_TRIALS - 5
        whole = stream.take(start, 10)
        parts = np.concatenate([stream.take(start, 5),
                                stream.take(MC_BLOCK_TRIALS, 5)])
        np.testing.assert_array_equal(whole, parts)

    @pytest.mark.parametrize("stream_cls",
                             [SobolNormalStream, PseudoNormalStream])
    def test_replicates_are_distinct(self, stream_cls):
        a = stream_cls(seed=11, replicate=0).take(0, 32)
        b = stream_cls(seed=11, replicate=1).take(0, 32)
        assert not np.array_equal(a, b)

    def test_sobol_stream_is_roughly_standard_normal(self):
        z = SobolNormalStream(seed=0).take(0, 4096)
        assert abs(float(z.mean())) < 0.05
        assert float(z.std()) == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("stream_cls",
                             [SobolNormalStream, PseudoNormalStream])
    def test_take_validates_range(self, stream_cls):
        with pytest.raises(ParameterError):
            stream_cls().take(-1, 4)
        with pytest.raises(ParameterError):
            stream_cls().take(0, 0)

    @pytest.mark.parametrize("stream_cls",
                             [SobolNormalStream, PseudoNormalStream])
    def test_constructor_validates(self, stream_cls):
        with pytest.raises(ParameterError):
            stream_cls(replicate=-1)
        with pytest.raises(ParameterError):
            stream_cls(dim=0)

    def test_qmc_vth_offsets_scale_with_device_sigma(self, inverter_sub):
        offs_n, offs_p = qmc_vth_offsets(inverter_sub, 1024, seed=5)
        assert offs_n.shape == offs_p.shape == (1024,)
        # mV-scale RDF offsets, not standardised units
        assert 1e-4 < float(np.std(offs_n)) < 0.05
        with pytest.raises(ParameterError):
            qmc_vth_offsets(inverter_sub, 0)


class TestSigmaLevel:
    def test_six_sigma_round_trip(self):
        assert sigma_level(failure_probability(6.0)) == pytest.approx(6.0)
        assert failure_probability(6.0) == pytest.approx(9.866e-10,
                                                         rel=1e-3)

    def test_edge_cases(self):
        assert sigma_level(0.0) == math.inf
        assert sigma_level(1.0) == -math.inf
        with pytest.raises(ParameterError):
            sigma_level(-1e-9)

    def test_monotone_decreasing_in_p(self):
        ps = [1e-9, 1e-6, 1e-3, 0.5]
        sigmas = [sigma_level(p) for p in ps]
        assert sigmas == sorted(sigmas, reverse=True)


class TestFindFailureShift:
    def test_recovers_half_plane_design_point(self):
        shift = find_failure_shift(half_plane(3.0))
        assert shift is not None
        assert shift.beta_sigma == pytest.approx(3.0, abs=0.02)
        np.testing.assert_allclose(shift.u_star, [3.0, 0.0], atol=0.15)

    def test_diagonal_direction(self):
        shift = find_failure_shift(half_plane(2.5, direction=(1.0, 1.0)))
        assert shift.beta_sigma == pytest.approx(2.5, abs=0.02)

    def test_none_beyond_horizon(self):
        assert find_failure_shift(half_plane(12.0),
                                  r_max_sigma=8.0) is None

    def test_probe_count_is_batched_not_per_ray(self):
        shift = find_failure_shift(half_plane(3.0), n_directions=16,
                                   n_bisections=16)
        # two fans of 16 rays, <= 17 batched rounds each
        assert shift.n_probes <= 2 * 16 * 17

    def test_validates_inputs(self):
        with pytest.raises(ParameterError):
            find_failure_shift(half_plane(3.0), dim=3)
        with pytest.raises(ParameterError):
            find_failure_shift(half_plane(3.0), n_directions=2)
        with pytest.raises(ParameterError):
            find_failure_shift(half_plane(3.0), r_max_sigma=0.0)


class TestEstimator:
    @pytest.mark.parametrize("method", ["is", "qmc-is"])
    def test_unbiased_on_analytic_tail(self, method):
        # p = ndtr(-4) ~ 3.17e-5: far beyond a 4096-trial brute reach,
        # easily resolved by the shifted estimator.  The plane is
        # tilted: an exactly axis-aligned boundary would sit on a
        # dyadic boundary of the Sobol' net after the shift, where the
        # replicate-spread CI is known to under-cover.
        exact = failure_probability(4.0)
        est = estimate_failure_probability(half_plane(4.0, (1.0, 0.5)),
                                           method=method,
                                           n_trials=4096, seed=7)
        assert est.ci_lo <= exact <= est.ci_hi
        assert est.p_fail == pytest.approx(exact, rel=0.15)
        assert est.rel_err < 0.10
        assert est.ess > 50.0

    def test_mc_matches_exact_at_moderate_p(self):
        exact = failure_probability(2.0)        # ~2.3e-2
        est = estimate_failure_probability(half_plane(2.0), method="mc",
                                           n_trials=1 << 14, seed=7)
        assert est.ci_lo <= exact <= est.ci_hi

    @pytest.mark.parametrize("chunk", [129, 777, 4096, 100000])
    def test_chunk_size_does_not_change_the_bytes(self, chunk):
        base = estimate_failure_probability(half_plane(4.0),
                                            n_trials=4096, seed=7)
        alt = estimate_failure_probability(half_plane(4.0),
                                           n_trials=4096, seed=7,
                                           chunk_trials=chunk)
        assert alt.p_fail == base.p_fail
        assert alt.rel_err == base.rel_err
        assert alt.ci_lo == base.ci_lo and alt.ci_hi == base.ci_hi

    @pytest.mark.parametrize("chunk", [129, 4096])
    def test_early_stopping_is_chunk_invariant(self, chunk):
        est = estimate_failure_probability(half_plane(4.0),
                                           n_trials=1 << 15, seed=7,
                                           target_rel_err=0.10,
                                           chunk_trials=chunk)
        assert est.n_trials < (1 << 15)          # actually stopped early
        assert est.rel_err <= 0.10
        base = estimate_failure_probability(half_plane(4.0),
                                            n_trials=1 << 15, seed=7,
                                            target_rel_err=0.10)
        assert est.n_trials == base.n_trials
        assert est.p_fail == base.p_fail

    def test_explicit_shift_skips_search(self):
        shift = FailurePoint(u_star=np.array([4.0, 0.0]), beta_sigma=4.0,
                             n_probes=0)
        est = estimate_failure_probability(half_plane(4.0), shift=shift,
                                           n_trials=2048, seed=7)
        assert est.shift is shift
        assert est.ci_lo <= failure_probability(4.0) <= est.ci_hi

    def test_unreachable_failure_reports_zero_without_trials(self):
        est = estimate_failure_probability(half_plane(12.0),
                                           r_max_sigma=8.0)
        assert est.p_fail == 0 and est.n_trials == 0
        assert est.sigma == math.inf and est.rel_err == math.inf

    def test_unshifted_methods_carry_no_shift(self):
        est = estimate_failure_probability(half_plane(1.0), method="qmc",
                                           n_trials=1024, seed=7)
        assert est.shift is None
        assert est.n_replicates == 8

    def test_validates_inputs(self):
        with pytest.raises(ParameterError):
            estimate_failure_probability(half_plane(1.0), method="lhs")
        with pytest.raises(ParameterError):
            estimate_failure_probability(half_plane(1.0), n_trials=1)
        with pytest.raises(ParameterError):
            estimate_failure_probability(half_plane(1.0), method="qmc",
                                         n_replicates=1)
        with pytest.raises(ParameterError):
            estimate_failure_probability(half_plane(1.0),
                                         target_rel_err=0.0)
        with pytest.raises(ParameterError):
            estimate_failure_probability(half_plane(1.0), chunk_trials=0)


class TestPhysicalIndicators:
    def test_delay_indicator_fails_on_slow_corners(self, inverter_sub):
        indicator = failure_indicator(inverter_sub, mode="delay",
                                      slowdown=1.5)
        u = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, -8.0]])
        mask = indicator(u)
        assert not mask[0]          # nominal cell meets timing
        assert mask[1]              # +8 sigma V_th on both devices: slow
        assert not mask[2]          # fast corner never *exceeds* t_max

    def test_snm_indicator_nominal_cell_passes(self, inverter_sub):
        indicator = failure_indicator(inverter_sub, mode="snm")
        mask = indicator(np.zeros((1, 2)))
        assert not mask[0]

    def test_validates_modes_and_thresholds(self, inverter_sub):
        with pytest.raises(ParameterError):
            failure_indicator(inverter_sub, mode="leakage")
        with pytest.raises(ParameterError):
            failure_indicator(inverter_sub, mode="snm", snm_min_v=-0.1)
        with pytest.raises(ParameterError):
            failure_indicator(inverter_sub, mode="delay", slowdown=0.9)
        with pytest.raises(ParameterError):
            failure_indicator(inverter_sub, mode="delay", t_max_s=-1e-9)

    def test_cell_failure_rate_delay_tail(self, sub_family):
        inv = sub_family.design("32nm").inverter(0.25)
        est = cell_failure_rate(inv, mode="delay", slowdown=1.3,
                                n_trials=2048)
        # The brute-verified agreement point: p ~ 2.5e-4.
        assert 1e-4 < est.p_fail < 1e-3
        assert est.rel_err < 0.10

    def test_cell_failure_rate_rejects_unknown_method(self, inverter_sub):
        with pytest.raises(ParameterError):
            cell_failure_rate(inverter_sub, method="lhs")


class TestFailureRateCurve:
    def test_curve_is_order_independent(self, sub_family):
        design = sub_family.design("32nm")
        kwargs = dict(mode="delay", slowdown=1.3, n_trials=512,
                      n_replicates=4)
        fwd = failure_rate_curve(design.inverter, [0.25, 0.30], "sub",
                                 **kwargs)
        rev = failure_rate_curve(design.inverter, [0.30, 0.25], "sub",
                                 **kwargs)
        np.testing.assert_array_equal(fwd.p_fail, rev.p_fail[::-1])
        np.testing.assert_array_equal(fwd.ci_lo, rev.ci_lo[::-1])

    def test_sigma_rises_with_supply(self, sub_family):
        design = sub_family.design("32nm")
        curve = failure_rate_curve(design.inverter, [0.25, 0.40], "sub",
                                   mode="delay", slowdown=1.3,
                                   n_trials=512, n_replicates=4,
                                   r_max_sigma=10.0)
        assert curve.sigma[1] > curve.sigma[0]

    def test_rejects_empty_grid(self, inverter_sub):
        with pytest.raises(ParameterError):
            failure_rate_curve(lambda v: inverter_sub, [], "x")


class TestYieldCli:
    def test_yield_smoke(self, capsys):
        from repro.cli import main
        assert main(["yield", "--vdd", "0.25", "--trials", "256",
                     "--slowdown", "1.3"]) == 0
        out = capsys.readouterr().out
        assert "p_fail" in out and "sigma" in out

    def test_yield_unknown_node_exits_2(self, capsys):
        from repro.cli import main
        assert main(["yield", "--node", "7nm"]) == 2
        err = capsys.readouterr().err
        assert "7nm" in err and "32nm" in err
