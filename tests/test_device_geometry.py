"""Tests for device geometry."""

import pytest

from repro.constants import nm_to_cm
from repro.device.geometry import (
    DeviceGeometry,
    JUNCTION_DEPTH_FRACTION,
    OVERLAP_FRACTION,
)
from repro.errors import ParameterError


class TestConstruction:
    def test_from_nm_basic(self):
        g = DeviceGeometry.from_nm(65.0)
        assert g.l_poly_nm == pytest.approx(65.0)
        assert g.width_um == pytest.approx(1.0)

    def test_effective_length(self):
        g = DeviceGeometry.from_nm(65.0)
        expected = 65.0 * (1.0 - 2.0 * OVERLAP_FRACTION)
        assert g.l_eff_nm == pytest.approx(expected)

    def test_junction_depth_proportional(self):
        g = DeviceGeometry.from_nm(65.0)
        assert g.junction_depth_cm == pytest.approx(
            JUNCTION_DEPTH_FRACTION * nm_to_cm(65.0))

    def test_reference_decouples_parasitics(self):
        # Sub-V_th convention: longer gate, node-scale parasitics.
        g = DeviceGeometry.from_nm(60.0, reference_nm=32.0)
        assert g.l_poly_nm == pytest.approx(60.0)
        assert g.junction_depth_cm == pytest.approx(
            JUNCTION_DEPTH_FRACTION * nm_to_cm(32.0))
        assert g.l_eff_nm == pytest.approx(
            60.0 - 2.0 * OVERLAP_FRACTION * 32.0)

    def test_aspect_ratio(self):
        g = DeviceGeometry.from_nm(65.0, width_um=2.0)
        assert g.aspect_ratio == pytest.approx(
            2.0e-4 / g.l_eff_cm)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ParameterError):
            DeviceGeometry(l_poly_cm=0.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ParameterError):
            DeviceGeometry(l_poly_cm=1e-6, width_cm=0.0)

    def test_rejects_overlap_consuming_gate(self):
        with pytest.raises(ParameterError):
            DeviceGeometry(l_poly_cm=nm_to_cm(20.0),
                           overlap_cm=nm_to_cm(15.0))

    def test_rejects_negative_junction_depth(self):
        with pytest.raises(ParameterError):
            DeviceGeometry(l_poly_cm=1e-6, junction_depth_cm=-1e-7)


class TestTransforms:
    def test_with_gate_length_keeps_parasitics(self):
        g = DeviceGeometry.from_nm(32.0)
        longer = g.with_gate_length(nm_to_cm(64.0))
        assert longer.l_poly_nm == pytest.approx(64.0)
        assert longer.junction_depth_cm == pytest.approx(g.junction_depth_cm)
        assert longer.overlap_cm == pytest.approx(g.overlap_cm)

    def test_with_gate_length_rescaled(self):
        g = DeviceGeometry.from_nm(32.0)
        longer = g.with_gate_length(nm_to_cm(64.0), rescale_parasitics=True)
        assert longer.junction_depth_cm == pytest.approx(
            2.0 * g.junction_depth_cm)

    def test_with_width(self):
        g = DeviceGeometry.from_nm(65.0).with_width(2e-4)
        assert g.width_um == pytest.approx(2.0)

    def test_scaled_uniform(self):
        g = DeviceGeometry.from_nm(65.0)
        s = g.scaled(0.7)
        assert s.l_poly_nm == pytest.approx(65.0 * 0.7)
        assert s.width_um == pytest.approx(0.7)
        assert s.overlap_cm == pytest.approx(0.7 * g.overlap_cm)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            DeviceGeometry.from_nm(65.0).scaled(-1.0)

    def test_proportional_rejects_bad_reference(self):
        with pytest.raises(ParameterError):
            DeviceGeometry.proportional(1e-6, reference_cm=0.0)
