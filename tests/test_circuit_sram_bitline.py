"""Tests for the sub-V_th bitline read model (paper ref [16])."""

import pytest

from repro.circuit.sram import SramCell, bitline_read, max_bits_per_line
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def cell(nfet90, pfet90):
    return SramCell(
        pulldown=nfet90.with_width_um(2.0),
        pullup=pfet90.with_width_um(1.0),
        access=nfet90.with_width_um(1.0),
        vdd=0.30,
    )


class TestBitlineRead:
    def test_margin_shrinks_with_population(self, cell):
        small = bitline_read(cell, 16)
        big = bitline_read(cell, 1024)
        assert big.margin_ratio < small.margin_ratio

    def test_sense_time_grows_with_population(self, cell):
        small = bitline_read(cell, 16)
        big = bitline_read(cell, 256)
        assert big.t_sense_s > small.t_sense_s

    def test_single_cell_always_readable(self, cell):
        report = bitline_read(cell, 1)
        assert report.i_leak_total_a == 0.0
        assert report.readable

    def test_readability_threshold(self, cell):
        limit = max_bits_per_line(cell)
        assert bitline_read(cell, max(limit // 2, 1)).readable
        assert not bitline_read(cell, 4 * limit).readable

    def test_rejects_bad_population(self, cell):
        with pytest.raises(ParameterError):
            bitline_read(cell, 0)

    def test_rejects_bad_swing(self, cell):
        with pytest.raises(ParameterError):
            bitline_read(cell, 16, sense_swing_v=1.0)


class TestMaxBitsPerLine:
    def test_reasonable_magnitude(self, cell):
        limit = max_bits_per_line(cell)
        assert 4 <= limit <= 1 << 14

    def test_tighter_margin_fewer_bits(self, cell):
        assert max_bits_per_line(cell, margin=4.0) < max_bits_per_line(
            cell, margin=2.0)

    def test_higher_vdd_more_bits(self, nfet90, pfet90):
        def cell_at(vdd):
            return SramCell(pulldown=nfet90.with_width_um(2.0),
                            pullup=pfet90.with_width_um(1.0),
                            access=nfet90.with_width_um(1.0), vdd=vdd)
        assert (max_bits_per_line(cell_at(0.40))
                > max_bits_per_line(cell_at(0.25)))

    def test_sub_vth_strategy_supports_more_bits(self, super_family,
                                                 sub_family):
        def cell_from(design):
            return SramCell(pulldown=design.nfet.with_width_um(2.0),
                            pullup=design.pfet.with_width_um(1.0),
                            access=design.nfet.with_width_um(1.0),
                            vdd=0.30)
        sup_cell = cell_from(super_family.design("32nm"))
        sub_cell = cell_from(sub_family.design("32nm"))
        assert (max_bits_per_line(sub_cell)
                > 1.5 * max_bits_per_line(sup_cell))

    def test_rejects_bad_margin(self, cell):
        with pytest.raises(ParameterError):
            max_bits_per_line(cell, margin=0.5)
