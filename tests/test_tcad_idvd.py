"""Tests for the simulator's output (I_d-V_ds) characteristics."""

import numpy as np
import pytest

from repro.device import nfet
from repro.errors import ParameterError
from repro.tcad.simulator import DeviceSimulator


@pytest.fixture(scope="module")
def sim():
    return DeviceSimulator(nfet(65, 2.1, 1.2e18, 1.5e18))


class TestIdVd:
    def test_monotone_in_vds(self, sim):
        vds = np.linspace(0.0, 1.2, 13)
        currents = sim.id_vd(0.8, vds)
        assert np.all(np.diff(currents) > -1e-30)

    def test_saturates(self, sim):
        vds = np.array([0.6, 0.9, 1.2])
        currents = sim.id_vd(0.8, vds)
        # Past saturation the growth (DIBL only) is modest.
        assert currents[2] / currents[1] < 1.5

    def test_linear_region_slope(self, sim):
        # Small vds: I ~ conductance * vds.
        vds = np.array([0.01, 0.02])
        currents = sim.id_vd(0.8, vds)
        assert currents[1] == pytest.approx(2.0 * currents[0], rel=0.15)

    def test_higher_vgs_more_current(self, sim):
        vds = np.array([0.6])
        low = sim.id_vd(0.6, vds)[0]
        high = sim.id_vd(1.0, vds)[0]
        assert high > 2.0 * low

    def test_subthreshold_drain_saturation_in_few_vt(self, sim):
        # In weak inversion I_d saturates within a few thermal voltages.
        dev_vth = sim.device.threshold.vth0()
        vgs = dev_vth - 0.15
        vds = np.array([0.025, 0.1, 0.3])
        currents = sim.id_vd(vgs, vds)
        assert currents[1] / currents[0] > 1.5      # still rising at 1 vT
        assert currents[2] / currents[1] < 1.6      # nearly flat by 4 vT

    def test_rejects_negative_vds(self, sim):
        with pytest.raises(ParameterError):
            sim.id_vd(0.8, np.array([-0.1, 0.5]))

    def test_consistent_with_id_vg(self, sim):
        # The same bias point through both sweep directions must agree.
        vgs, vds = 0.7, 0.8
        from_vd = sim.id_vd(vgs, np.array([vds]))[0]
        curve = sim.id_vg(vds, np.linspace(vgs - 0.1, vgs + 0.1, 5))
        from_vg = curve.current_at(vgs)
        assert from_vd == pytest.approx(from_vg, rel=0.02)
