"""Tests for the perf-counter instrumentation."""

import numpy as np

from repro import perf
from repro.device import nfet
from repro.tcad.simulator import DeviceSimulator


class TestCounters:
    def test_bump_get_reset(self):
        perf.reset()
        perf.bump("x")
        perf.bump("x", 4)
        assert perf.get("x") == 5
        assert perf.get("never-bumped") == 0
        perf.reset()
        assert perf.get("x") == 0

    def test_snapshot_and_merge(self):
        perf.reset()
        perf.bump("a", 2)
        snap = perf.snapshot()
        perf.merge({"a": 3, "b": 1})
        assert snap == {"a": 2}
        assert perf.get("a") == 5
        assert perf.get("b") == 1

    def test_report_renders_counts(self):
        perf.reset()
        assert "none recorded" in perf.report()
        perf.bump("poisson.solves", 1234)
        text = perf.report()
        assert "poisson.solves" in text
        assert "1,234" in text


class TestInstrumentation:
    def test_poisson_solves_counted(self):
        dev = nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                   n_p_halo_cm3=1.5e18)
        sim = DeviceSimulator(dev)
        perf.reset()
        sim.surface_potential_sweep(np.linspace(0.0, 1.0, 7))
        assert perf.get("poisson.batch_solves") == 1
        assert perf.get("poisson.solves") == 7
        assert perf.get("poisson.newton_iterations") >= 7

    def test_sequential_solves_counted(self):
        dev = nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                   n_p_halo_cm3=1.5e18)
        sim = DeviceSimulator(dev, solver="sequential")
        perf.reset()
        sim.surface_potential_sweep(np.linspace(0.0, 1.0, 7))
        assert perf.get("poisson.solves") == 7
        assert perf.get("poisson.batch_solves") == 0

    def test_brentq_residuals_counted(self):
        from repro.scaling.roadmap import roadmap_nodes
        from repro.scaling.supervth import SuperVthOptimizer
        perf.reset()
        SuperVthOptimizer(roadmap_nodes()[0]).solve_substrate(
            solver="sequential")
        assert perf.get("optimizer.brentq_residual_evals") > 2
        assert perf.get("scaling.doping_batch_solves") == 0

    def test_scaling_batch_counters(self):
        from repro.scaling.roadmap import roadmap_nodes
        from repro.scaling.supervth import SuperVthOptimizer
        perf.reset()
        SuperVthOptimizer(roadmap_nodes()[0]).solve_substrate()
        assert perf.get("scaling.doping_batch_solves") == 1
        assert perf.get("scaling.doping_batch_points") == 1
        assert perf.get("scaling.doping_bisection_sweeps") > 2
        assert perf.get("scaling.device_eval_points") > 2
        assert perf.get("optimizer.brentq_residual_evals") == 0
