"""Tests for static noise margins."""

import numpy as np
import pytest

from repro.circuit import Inverter, butterfly_snm, noise_margins
from repro.errors import ParameterError


class TestNoiseMargins:
    def test_snm_positive_at_250mv(self, inverter_sub):
        nm = noise_margins(inverter_sub)
        assert nm.snm > 0.0

    def test_snm_is_min_of_margins(self, inverter_sub):
        nm = noise_margins(inverter_sub)
        assert nm.snm == pytest.approx(min(nm.nm_low, nm.nm_high))

    def test_unity_gain_points_ordered(self, inverter_sub):
        nm = noise_margins(inverter_sub)
        assert 0.0 < nm.v_il < nm.v_ih < inverter_sub.vdd

    def test_output_levels_ordered(self, inverter_sub):
        nm = noise_margins(inverter_sub)
        assert nm.v_ol < nm.v_oh

    def test_gain_is_minus_one_at_points(self, inverter_sub):
        nm = noise_margins(inverter_sub)
        assert inverter_sub.gain(nm.v_il) == pytest.approx(-1.0, abs=0.02)
        assert inverter_sub.gain(nm.v_ih) == pytest.approx(-1.0, abs=0.02)

    def test_snm_grows_with_vdd(self, nfet90, pfet90):
        snm_250 = noise_margins(Inverter(nfet90, pfet90, 0.25)).snm
        snm_400 = noise_margins(Inverter(nfet90, pfet90, 0.40)).snm
        assert snm_400 > snm_250

    def test_degenerate_supply_raises(self, nfet90, pfet90):
        # Far below the regeneration limit there are no gain=-1 points.
        with pytest.raises(ParameterError):
            noise_margins(Inverter(nfet90, pfet90, 0.02))


class TestButterflySnm:
    def test_steep_vtc_near_half_vdd(self):
        # A near-ideal regenerative VTC (gain -25 through the
        # transition): the butterfly SNM approaches V_dd/2 from below.
        vin = np.linspace(0.0, 1.0, 401)
        vout = np.clip(25.0 * (0.5 - vin) + 0.5, 0.0, 1.0)
        snm = butterfly_snm((vin, vout))
        assert snm == pytest.approx(0.48, abs=0.02)

    def test_diagonal_vtc_zero(self):
        # A gainless inverter (vout = 1 - vin) holds no state.
        vin = np.linspace(0.0, 1.0, 101)
        snm = butterfly_snm((vin, 1.0 - vin))
        assert snm == pytest.approx(0.0, abs=1e-6)

    def test_real_inverter_butterfly(self, inverter_sub):
        vtc = inverter_sub.vtc(161)
        snm = butterfly_snm(vtc)
        assert 0.0 < snm < inverter_sub.vdd / 2.0

    def test_butterfly_close_to_gain_margins(self, inverter_sub):
        # Both definitions should be the same order of magnitude.
        vtc = inverter_sub.vtc(161)
        bf = butterfly_snm(vtc)
        gm = noise_margins(inverter_sub).snm
        assert 0.4 < bf / gm < 2.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ParameterError):
            butterfly_snm((np.linspace(0, 1, 4), np.linspace(1, 0, 4)))
