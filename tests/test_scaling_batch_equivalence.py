"""Batch vs sequential equivalence for the scaling-flow optimizers.

The batched design-space engine (:mod:`repro.scaling.batch`) must
reproduce the scalar flows to <= 1e-9 relative on every design knob and
reported metric, across all roadmap nodes, for both strategies.  The
scalar paths are the correctness oracles; these tests are what allows
``solver="batch"`` to be the default.
"""

import numpy as np
import pytest

from repro.device.batch import ParameterStack, device_metrics
from repro.device.mosfet import Polarity, nfet, pfet
from repro.scaling.roadmap import roadmap_nodes
from repro.scaling.subvth import (
    SUB_VTH_EVAL_VDD,
    SubVthOptimizer,
    build_sub_vth_family,
    optimize_doping_for_length,
)
from repro.scaling.supervth import SuperVthOptimizer, build_super_vth_family

RTOL = 1e-9


def _assert_devices_match(batch_dev, seq_dev, vdd):
    assert batch_dev.geometry.l_poly_nm == pytest.approx(
        seq_dev.geometry.l_poly_nm, rel=RTOL)
    assert batch_dev.profile.n_sub_cm3 == pytest.approx(
        seq_dev.profile.n_sub_cm3, rel=RTOL)
    assert batch_dev.profile.n_p_halo_cm3 == pytest.approx(
        seq_dev.profile.n_p_halo_cm3, rel=RTOL, abs=0.0)
    assert batch_dev.ss_v_per_dec == pytest.approx(
        seq_dev.ss_v_per_dec, rel=RTOL)
    assert batch_dev.i_off_per_um(vdd) == pytest.approx(
        seq_dev.i_off_per_um(vdd), rel=RTOL)


class TestDeviceLayer:
    """The parameter-axis device layer against scalar MOSFET metrics."""

    def test_metrics_match_scalar_devices(self):
        rng = np.random.default_rng(7)
        n = 24
        l_poly = rng.uniform(25.0, 140.0, n)
        t_ox = rng.uniform(1.0, 3.5, n)
        n_sub = 10.0 ** rng.uniform(17.0, 18.8, n)
        ratio = rng.choice([0.0, 0.5, 1.5], n)
        is_nfet = rng.random(n) < 0.5
        stack = ParameterStack(l_poly_nm=l_poly, t_ox_nm=t_ox,
                               is_nfet=is_nfet)
        metrics = stack.metrics(n_sub, ratio * n_sub)
        ss = metrics.ss_v_per_dec
        ioff = metrics.i_off_per_um(0.9)
        ion = metrics.i_on_per_um(0.9)
        for i in range(n):
            build = nfet if is_nfet[i] else pfet
            dev = build(l_poly_nm=l_poly[i], t_ox_nm=t_ox[i],
                        n_sub_cm3=n_sub[i],
                        n_p_halo_cm3=ratio[i] * n_sub[i])
            assert ss[i] == pytest.approx(dev.ss_v_per_dec, rel=1e-12)
            assert ioff[i] == pytest.approx(dev.i_off_per_um(0.9), rel=1e-12)
            assert ion[i] == pytest.approx(dev.i_on_per_um(0.9), rel=1e-12)

    def test_vth_sat_cc_matches_scalar(self):
        dev = nfet(l_poly_nm=37, t_ox_nm=1.4, n_sub_cm3=4e18,
                   n_p_halo_cm3=2e18)
        metrics = device_metrics(37, 1.4, 4e18, 2e18)
        assert float(metrics.vth_sat_cc(0.9)) == pytest.approx(
            dev.vth_sat_cc(0.9), abs=2e-6)


class TestSuperVthEquivalence:
    @pytest.mark.parametrize("node", roadmap_nodes(include_130nm=True),
                             ids=lambda n: n.name)
    @pytest.mark.parametrize("polarity", [Polarity.NFET, Polarity.PFET])
    def test_optimize(self, node, polarity):
        opt = SuperVthOptimizer(node, polarity,
                                width_um=2.0 if polarity is Polarity.PFET
                                else 1.0)
        _assert_devices_match(opt.optimize(solver="batch"),
                              opt.optimize(solver="sequential"),
                              node.vdd_nominal)

    def test_family(self):
        fam_b = build_super_vth_family(include_130nm=True)
        fam_s = build_super_vth_family(include_130nm=True,
                                       solver="sequential")
        for des_b, des_s in zip(fam_b.designs, fam_s.designs):
            vdd = des_b.node.vdd_nominal
            _assert_devices_match(des_b.nfet, des_s.nfet, vdd)
            _assert_devices_match(des_b.pfet, des_s.pfet, vdd)


class TestSubVthEquivalence:
    @pytest.mark.parametrize("node", roadmap_nodes(),
                             ids=lambda n: n.name)
    def test_optimize_doping_for_length(self, node):
        l_poly = 1.7 * node.l_poly_nm
        for polarity in (Polarity.NFET, Polarity.PFET):
            batch_dev = optimize_doping_for_length(
                node, l_poly, polarity=polarity,
                vdd_leak=SUB_VTH_EVAL_VDD, solver="batch")
            seq_dev = optimize_doping_for_length(
                node, l_poly, polarity=polarity,
                vdd_leak=SUB_VTH_EVAL_VDD, solver="sequential")
            _assert_devices_match(batch_dev, seq_dev, SUB_VTH_EVAL_VDD)

    def test_optimizer_and_family(self):
        fam_b = build_sub_vth_family()
        fam_s = build_sub_vth_family(solver="sequential")
        for des_b, des_s in zip(fam_b.designs, fam_s.designs):
            _assert_devices_match(des_b.nfet, des_s.nfet, SUB_VTH_EVAL_VDD)
            _assert_devices_match(des_b.pfet, des_s.pfet, SUB_VTH_EVAL_VDD)

    def test_sweep_rows_match(self):
        node = roadmap_nodes()[1]
        opt = SubVthOptimizer(node, n_length_points=5)
        rows_b = opt.sweep(solver="batch")
        rows_s = opt.sweep(solver="sequential")
        for (l_b, des_b, e_b), (l_s, des_s, e_s) in zip(rows_b, rows_s):
            assert l_b == l_s
            assert e_b == pytest.approx(e_s, rel=RTOL)
            _assert_devices_match(des_b.nfet, des_s.nfet, SUB_VTH_EVAL_VDD)


class TestWarmStartStability:
    def test_repeat_solve_within_flow_is_consistent(self):
        # Inside one flow invocation the second solve warm-starts from
        # the first solve's bracket; the warm-started root must land
        # within the equivalence budget of the cold one.
        from repro import perf
        from repro.scaling import batch as batch_mod
        from repro.scaling.subvth import sub_vth_ioff_target

        node = roadmap_nodes()[2]
        req = batch_mod.DopingSolveRequest(
            node=node, l_poly_nm=1.4 * node.l_poly_nm, halo_ratio=0.5,
            polarity=Polarity.NFET, width_um=1.0,
            ioff_target=sub_vth_ioff_target(node),
            vdd_leak=SUB_VTH_EVAL_VDD)
        batch_mod.reset_warm_starts()
        cold = batch_mod.solve_substrate_stack([req])
        before = perf.get("cache.bracket.hits")
        warm = batch_mod.solve_substrate_stack([req])
        assert perf.get("cache.bracket.hits") == before + 1
        assert bool(cold.feasible[0]) and bool(warm.feasible[0])
        assert warm.root_log10[0] == pytest.approx(
            cold.root_log10[0], rel=RTOL)

    def test_flow_entries_are_cache_state_independent(self):
        # Top-level flows start with a cold bracket cache, so the
        # optimum is bit-identical however often (or in whatever order)
        # flows run — `repro report --jobs N` depends on this.
        node = roadmap_nodes()[2]
        first = optimize_doping_for_length(node, 1.4 * node.l_poly_nm,
                                           vdd_leak=SUB_VTH_EVAL_VDD)
        second = optimize_doping_for_length(node, 1.4 * node.l_poly_nm,
                                            vdd_leak=SUB_VTH_EVAL_VDD)
        assert second.profile.n_sub_cm3 == first.profile.n_sub_cm3
        assert second.profile.n_p_halo_cm3 == first.profile.n_p_halo_cm3
