"""Tests for JSON serialization round-trips."""

import pytest

from repro.errors import ParameterError
from repro.experiments import run_experiment
from repro.io import (
    design_from_dict,
    design_to_dict,
    device_from_dict,
    device_to_dict,
    family_from_dict,
    family_to_dict,
    load_json,
    result_to_dict,
    save_json,
)


class TestDeviceRoundTrip:
    def test_metrics_preserved(self, nfet90):
        clone = device_from_dict(device_to_dict(nfet90))
        assert clone.ss_v_per_dec == pytest.approx(nfet90.ss_v_per_dec)
        assert clone.i_off(1.2) == pytest.approx(nfet90.i_off(1.2))
        assert clone.vth(0.1) == pytest.approx(nfet90.vth(0.1))

    def test_polarity_preserved(self, pfet90):
        clone = device_from_dict(device_to_dict(pfet90))
        assert clone.polarity is pfet90.polarity
        assert clone.geometry.width_um == pytest.approx(2.0)

    def test_halo_free_device(self):
        from repro.device import nfet
        dev = nfet(65, 2.1, 1.5e18)
        clone = device_from_dict(device_to_dict(dev))
        assert clone.profile.halo is None

    def test_vth_offset_preserved(self, nfet90):
        shifted = nfet90.with_vth_offset(0.033)
        clone = device_from_dict(device_to_dict(shifted))
        assert clone.vth_offset_v == pytest.approx(0.033)

    def test_kind_checked(self, nfet90):
        payload = device_to_dict(nfet90)
        payload["kind"] = "banana"
        with pytest.raises(ParameterError):
            device_from_dict(payload)

    def test_schema_checked(self, nfet90):
        payload = device_to_dict(nfet90)
        payload["schema"] = 99
        with pytest.raises(ParameterError):
            device_from_dict(payload)


class TestDesignAndFamilyRoundTrip:
    def test_design_round_trip(self, super_family):
        design = super_family.designs[0]
        clone = design_from_dict(design_to_dict(design))
        assert clone.node.name == design.node.name
        assert clone.strategy == design.strategy
        assert clone.nfet.ss_v_per_dec == pytest.approx(
            design.nfet.ss_v_per_dec)

    def test_family_round_trip(self, super_family):
        clone = family_from_dict(family_to_dict(super_family))
        assert clone.node_names() == super_family.node_names()
        for a, b in zip(clone.designs, super_family.designs):
            assert a.nfet.i_off(1.0) == pytest.approx(b.nfet.i_off(1.0))

    def test_summary_identical_after_round_trip(self, sub_family):
        design = sub_family.designs[-1]
        clone = design_from_dict(design_to_dict(design))
        original = design.summary()
        restored = clone.summary()
        for key, value in original.items():
            assert restored[key] == pytest.approx(value, rel=1e-9)


class TestFiles:
    def test_save_and_load(self, tmp_path, nfet90):
        path = tmp_path / "device.json"
        save_json(device_to_dict(nfet90), path)
        clone = device_from_dict(load_json(path))
        assert clone.ss_v_per_dec == pytest.approx(nfet90.ss_v_per_dec)

    def test_result_serialises(self, tmp_path):
        result = run_experiment("table1")
        payload = result_to_dict(result)
        path = tmp_path / "result.json"
        save_json(payload, path)
        loaded = load_json(path)
        assert loaded["experiment_id"] == "table1"
        assert len(loaded["comparisons"]) == len(result.comparisons)

    def test_result_with_series(self, tmp_path):
        result = run_experiment("fig2")
        payload = result_to_dict(result)
        assert payload["series"][0]["x"]
        save_json(payload, tmp_path / "fig2.json")
        loaded = load_json(tmp_path / "fig2.json")
        assert loaded["series"][0]["label"] == result.series[0].label

    def test_result_round_trip(self, tmp_path):
        from repro.io import result_from_dict
        result = run_experiment("fig2")
        path = tmp_path / "fig2.json"
        save_json(result_to_dict(result), path)
        clone = result_from_dict(load_json(path))
        assert clone.experiment_id == result.experiment_id
        # Compare re-serialised text: NaN paper values (qualitative
        # claims) defeat dataclass equality but are JSON-stable.
        import json
        assert (json.dumps(result_to_dict(clone), sort_keys=True)
                == json.dumps(result_to_dict(result), sort_keys=True))
        assert clone.rows == result.rows
        for orig, copy in zip(result.series, clone.series):
            assert copy.label == orig.label
            assert copy.y.tolist() == orig.y.tolist()
