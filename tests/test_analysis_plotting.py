"""Tests for the ASCII chart renderer and sparkline."""

import numpy as np
import pytest

from repro.analysis import Series, render_ascii_chart, sparkline
from repro.errors import ParameterError


@pytest.fixture()
def up_series():
    return Series(label="up", x=np.array([0.0, 1.0, 2.0, 3.0]),
                  y=np.array([1.0, 2.0, 3.0, 4.0]))


@pytest.fixture()
def down_series():
    return Series(label="down", x=np.array([0.0, 1.0, 2.0, 3.0]),
                  y=np.array([4.0, 3.0, 2.0, 1.0]))


class TestAsciiChart:
    def test_contains_glyphs_and_legend(self, up_series):
        chart = render_ascii_chart([up_series])
        assert "*" in chart
        assert "up" in chart

    def test_two_series_distinct_glyphs(self, up_series, down_series):
        chart = render_ascii_chart([up_series, down_series])
        assert "*" in chart and "o" in chart

    def test_axis_labels_present(self, up_series):
        chart = render_ascii_chart([up_series])
        assert "4" in chart.splitlines()[0]       # y max on first line
        assert "0" in chart.splitlines()[-2]      # x axis line

    def test_monotone_series_renders_monotone(self, up_series):
        chart = render_ascii_chart([up_series], width=32, height=8)
        rows = [line[13:] for line in chart.splitlines()[:8]]
        first_col_positions = []
        for col in range(32):
            for row_idx, row in enumerate(rows):
                if col < len(row) and row[col] == "*":
                    first_col_positions.append(row_idx)
                    break
        # Row index decreases toward the top: should be non-increasing
        # left-to-right for a rising series.
        assert all(b <= a for a, b in
                   zip(first_col_positions, first_col_positions[1:]))

    def test_log_scale(self):
        s = Series(label="decades", x=np.array([0.0, 1.0, 2.0]),
                   y=np.array([1.0, 10.0, 100.0]))
        chart = render_ascii_chart([s], logy=True)
        assert "100" in chart

    def test_log_scale_rejects_nonpositive(self, up_series):
        bad = Series(label="bad", x=up_series.x,
                     y=np.array([1.0, -1.0, 2.0, 3.0]))
        with pytest.raises(ParameterError):
            render_ascii_chart([bad], logy=True)

    def test_too_small_rejected(self, up_series):
        with pytest.raises(ParameterError):
            render_ascii_chart([up_series], width=4, height=2)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            render_ascii_chart([])


class TestSparkline:
    def test_monotone(self):
        assert sparkline([1, 2, 3, 4]) == "▁▃▆█"

    def test_flat(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_width_resampling(self):
        line = sparkline(np.linspace(0, 1, 100), width=10)
        assert len(line) == 10

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            sparkline([])
