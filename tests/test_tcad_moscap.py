"""Tests for the quasi-static C-V simulation."""

import numpy as np
import pytest

from repro.device import nfet
from repro.errors import ParameterError
from repro.tcad.moscap import (
    compare_with_compact,
    simulate_cv,
    weak_inversion_capacitance_ratio,
)
from repro.tcad.simulator import DeviceSimulator


@pytest.fixture(scope="module")
def sim():
    return DeviceSimulator(nfet(65, 2.1, 1.2e18, 1.5e18))


@pytest.fixture(scope="module")
def curve(sim):
    vth0 = sim.device.threshold.vth0()
    return simulate_cv(sim, vth0 - 0.9, vth0 + 0.6, n_points=61)


class TestCvShape:
    def test_bounded_by_cox(self, curve):
        assert np.all(curve.c_gg_per_area <= curve.c_ox_per_area * 1.02)

    def test_depletion_minimum_interior(self, curve):
        v_min, c_min = curve.minimum()
        assert curve.vg[0] < v_min < curve.vg[-1]
        assert c_min < 0.5 * curve.c_ox_per_area

    def test_strong_inversion_recovers_toward_cox(self, curve, sim):
        vth0 = sim.device.threshold.vth0()
        c_strong = curve.at(vth0 + 0.55)
        assert c_strong > 0.85 * curve.c_ox_per_area

    def test_weak_inversion_far_below_cox(self, curve, sim):
        vth0 = sim.device.threshold.vth0()
        c_weak = curve.at(vth0 - 0.15)
        assert c_weak < 0.45 * curve.c_ox_per_area

    def test_interpolation(self, curve):
        inside = 0.5 * (curve.vg[3] + curve.vg[4])
        value = curve.at(inside)
        assert min(curve.c_gg_per_area[3], curve.c_gg_per_area[4]) <= value \
            <= max(curve.c_gg_per_area[3], curve.c_gg_per_area[4])


class TestValidation:
    def test_rejects_bad_range(self, sim):
        with pytest.raises(ParameterError):
            simulate_cv(sim, 1.0, 0.5)

    def test_rejects_few_points(self, sim):
        with pytest.raises(ParameterError):
            simulate_cv(sim, 0.0, 1.0, n_points=4)


class TestCompactAgreement:
    def test_weak_inversion_ratio_matches_m_model(self, sim):
        report = compare_with_compact(sim)
        # The (m-1)/m compact approximation holds to ~15%.
        assert report["relative_difference"] < 0.15

    def test_ratio_in_physical_band(self, sim):
        ratio = weak_inversion_capacitance_ratio(sim)
        assert 0.1 < ratio < 0.5

    def test_heavier_doping_larger_weak_ratio(self):
        light = DeviceSimulator(nfet(65, 2.1, 8e17, 1e18))
        heavy = DeviceSimulator(nfet(65, 2.1, 4e18, 5e18))
        assert (weak_inversion_capacitance_ratio(heavy)
                > weak_inversion_capacitance_ratio(light))
