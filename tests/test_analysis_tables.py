"""Tests for table rendering."""

import pytest

from repro.analysis.tables import format_sig, render_table
from repro.errors import ParameterError


class TestFormatSig:
    def test_integers(self):
        assert format_sig(1234.5) == "1230"

    def test_small(self):
        assert format_sig(0.00123) == "0.00123"

    def test_tiny_scientific(self):
        assert "e" in format_sig(1.23e-8)

    def test_zero(self):
        assert format_sig(0.0) == "0"

    def test_nan_and_inf(self):
        assert format_sig(float("nan")) == "nan"
        assert format_sig(float("inf")) == "inf"

    def test_negative(self):
        assert format_sig(-2.5) == "-2.50"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(("a", "b"), [("x", 1.0), ("y", 2.0)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(("a",), [("x",)], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_alignment(self):
        text = render_table(("col", "value"), [("long-entry", 1.0)])
        header, sep, row = text.splitlines()
        assert header.index("|") == row.index("|")

    def test_numbers_formatted(self):
        text = render_table(("v",), [(1234.5,)])
        assert "1230" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ParameterError):
            render_table(("a", "b"), [("only-one",)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ParameterError):
            render_table((), [])
