"""Tests for the RDF / Monte-Carlo variability extension."""

import numpy as np
import pytest

from repro.circuit import Inverter
from repro.device import nfet
from repro.variability import (
    MonteCarloResult,
    delay_distribution,
    rdf_sigma_vth,
    sample_vth_offsets,
    snm_distribution,
)
from repro.variability.rdf import avt_coefficient, avt_mv_um
from repro.errors import ParameterError


class TestRdf:
    def test_sigma_plausible(self, nfet90):
        sigma = rdf_sigma_vth(nfet90)
        assert 0.002 < sigma < 0.08

    def test_smaller_device_more_sigma(self, nfet90):
        narrow = nfet90.with_width_um(0.25)
        assert rdf_sigma_vth(narrow) == pytest.approx(
            2.0 * rdf_sigma_vth(nfet90), rel=1e-6)

    def test_short_device_more_sigma(self):
        long_dev = nfet(65, 2.1, 1.2e18, 1.5e18)
        short_dev = nfet(22, 1.53, 2.1e18, 9e18)
        assert rdf_sigma_vth(short_dev) > rdf_sigma_vth(long_dev)

    def test_avt_area_independent(self, nfet90):
        narrow = nfet90.with_width_um(0.5)
        assert avt_coefficient(narrow) == pytest.approx(
            avt_coefficient(nfet90), rel=1e-6)

    def test_avt_conventional_units(self, nfet90):
        # Bulk technologies: a few mV*um.
        assert 0.5 < avt_mv_um(nfet90) < 15.0


class TestMonteCarloResult:
    def test_from_samples(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        r = MonteCarloResult.from_samples(samples)
        assert r.mean == pytest.approx(3.0)
        assert r.p50 == pytest.approx(3.0)
        assert r.p05 < r.p50 < r.p95

    def test_sigma_over_mean(self):
        r = MonteCarloResult.from_samples(np.array([1.0, 3.0]))
        assert r.sigma_over_mean == pytest.approx(r.std / 2.0)

    def test_needs_two_samples(self):
        with pytest.raises(ParameterError):
            MonteCarloResult.from_samples(np.array([1.0]))


class TestSampling:
    def test_deterministic_seed(self, inverter_sub):
        a = sample_vth_offsets(inverter_sub, 50, seed=7)
        b = sample_vth_offsets(inverter_sub, 50, seed=7)
        assert np.allclose(a[0], b[0])
        assert np.allclose(a[1], b[1])

    def test_different_seeds_differ(self, inverter_sub):
        a = sample_vth_offsets(inverter_sub, 50, seed=7)
        b = sample_vth_offsets(inverter_sub, 50, seed=8)
        assert not np.allclose(a[0], b[0])

    def test_rejects_zero_trials(self, inverter_sub):
        with pytest.raises(ParameterError):
            sample_vth_offsets(inverter_sub, 0)


class TestCircuitDistributions:
    def test_delay_spread_substantial_in_subthreshold(self, inverter_sub):
        result = delay_distribution(inverter_sub, n_trials=120)
        # Exponential sensitivity: sigma/mu of several percent even for
        # this 1 um-wide (low-RDF) device.
        assert result.sigma_over_mean > 0.04
        assert result.p95 > result.p05

    def test_delay_spread_smaller_at_nominal(self, inverter_sub,
                                             inverter_nominal):
        sub = delay_distribution(inverter_sub, n_trials=120)
        nom = delay_distribution(inverter_nominal, n_trials=120)
        assert nom.sigma_over_mean < sub.sigma_over_mean

    def test_snm_distribution(self, inverter_sub):
        result = snm_distribution(inverter_sub, n_trials=40)
        assert result.mean > 0.0
        assert result.std > 0.0
