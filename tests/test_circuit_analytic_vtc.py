"""Tests for the paper's Eq. 3 analytic subthreshold VTC."""

import numpy as np
import pytest

from repro.circuit.analytic_vtc import (
    analytic_snm_matched,
    compare_with_numeric,
    max_gain_matched,
    switching_threshold_matched,
    vin_of_vout_general,
    vin_of_vout_matched,
)
from repro.circuit.snm import noise_margins
from repro.errors import ParameterError

VDD = 0.25
M = 1.30


class TestEq3c:
    def test_symmetry_point(self):
        # At V_out = V_dd/2 the log term vanishes: V_in = V_dd/2.
        assert vin_of_vout_matched(VDD / 2.0, VDD, M) == pytest.approx(
            VDD / 2.0)

    def test_antisymmetry(self):
        # Eq. 3(c) is antisymmetric about the midpoint.
        v1 = vin_of_vout_matched(0.06, VDD, M)
        v2 = vin_of_vout_matched(VDD - 0.06, VDD, M)
        assert v1 + v2 == pytest.approx(VDD, abs=1e-12)

    def test_monotone_decreasing(self):
        vouts = np.linspace(0.01, VDD - 0.01, 101)
        vins = vin_of_vout_matched(vouts, VDD, M)
        assert np.all(np.diff(vins) < 0.0)

    def test_slope_factor_widens_transition(self):
        # Larger m -> shallower transition -> wider V_in range.
        span_small = (vin_of_vout_matched(0.01, VDD, 1.1)
                      - vin_of_vout_matched(VDD - 0.01, VDD, 1.1))
        span_large = (vin_of_vout_matched(0.01, VDD, 1.6)
                      - vin_of_vout_matched(VDD - 0.01, VDD, 1.6))
        assert span_large > span_small

    def test_rejects_rail_values(self):
        with pytest.raises(ParameterError):
            vin_of_vout_matched(0.0, VDD, M)
        with pytest.raises(ParameterError):
            vin_of_vout_matched(VDD, VDD, M)

    def test_rejects_bad_m(self):
        with pytest.raises(ParameterError):
            vin_of_vout_matched(0.1, VDD, 0.9)


class TestEq3b:
    def test_reduces_to_eq3c_when_matched(self):
        general = vin_of_vout_general(0.08, VDD, M, M, 0.4, 0.4,
                                      1e-7, 1e-7)
        matched = vin_of_vout_matched(0.08, VDD, M)
        assert general == pytest.approx(matched, abs=1e-12)

    def test_stronger_pfet_shifts_trip_up(self):
        # I_0P > I_0N: the PFET wins the fight; the transition moves to
        # a higher input voltage.
        skewed = vin_of_vout_general(VDD / 2.0, VDD, M, M, 0.4, 0.4,
                                     1e-7, 4e-7)
        assert skewed > VDD / 2.0

    def test_rejects_bad_prefactors(self):
        with pytest.raises(ParameterError):
            vin_of_vout_general(0.1, VDD, M, M, 0.4, 0.4, 0.0, 1e-7)


class TestDerivedQuantities:
    def test_trip_point(self):
        assert switching_threshold_matched(VDD) == pytest.approx(VDD / 2.0)

    def test_gain_grows_with_vdd(self):
        assert max_gain_matched(0.3, M) > max_gain_matched(0.2, M)

    def test_gain_falls_with_m(self):
        assert max_gain_matched(VDD, 1.6) < max_gain_matched(VDD, 1.1)

    def test_analytic_snm_close_to_numeric(self, inverter_sub):
        analytic = analytic_snm_matched(inverter_sub.vdd,
                                        inverter_sub.nfet.slope_factor)
        numeric = noise_margins(inverter_sub).snm
        assert analytic.snm == pytest.approx(numeric, rel=0.10)

    def test_analytic_snm_degrades_with_m(self):
        good = analytic_snm_matched(VDD, 1.2)
        bad = analytic_snm_matched(VDD, 1.6)
        assert bad.snm < good.snm

    def test_no_regeneration_at_tiny_vdd(self):
        with pytest.raises(ParameterError):
            analytic_snm_matched(0.03, M)


class TestAgreementWithNumericVtc:
    def test_deep_subthreshold_agreement(self, inverter_sub):
        report = compare_with_numeric(inverter_sub)
        # Eq. 3 holds to ~10 mV at 250 mV supply.
        assert report["max_vin_deviation_v"] < 0.02

    def test_agreement_degrades_toward_threshold(self, nfet90, pfet90):
        from repro.circuit import Inverter
        deep = compare_with_numeric(Inverter(nfet90, pfet90, 0.22))
        near = compare_with_numeric(Inverter(nfet90, pfet90, 0.40))
        assert near["max_vin_deviation_v"] > deep["max_vin_deviation_v"]
