"""Tests for the super-V_th (Fig. 1c) optimiser."""

import pytest

from repro.device.mosfet import Polarity
from repro.scaling.roadmap import NodeSpec, node_by_name
from repro.scaling.supervth import (
    SuperVthOptimizer,
    build_super_vth_design,
)
from repro.errors import OptimizationError


class TestDopingSolves:
    def test_budget_binds_exactly(self, super_family):
        for design in super_family.designs:
            measured = design.nfet.i_off_per_um(design.node.vdd_nominal)
            assert measured == pytest.approx(
                design.node.ioff_target_a_per_um, rel=0.01)

    def test_pfet_budget_binds_too(self, super_family):
        for design in super_family.designs:
            measured = design.pfet.i_off_per_um(design.node.vdd_nominal)
            assert measured == pytest.approx(
                design.node.ioff_target_a_per_um, rel=0.01)

    def test_halo_exceeds_substrate(self, super_family):
        # The short-channel solve always needs halo on top of N_sub.
        for design in super_family.designs:
            assert (design.nfet.profile.n_p_halo_cm3
                    > 0.3 * design.nfet.profile.n_sub_cm3)

    def test_doping_grows_with_scaling(self, super_family):
        nsub = [d.nfet.profile.n_sub_cm3 for d in super_family.designs]
        nhalo = [d.nfet.profile.n_halo_net_cm3 for d in super_family.designs]
        assert all(b > a for a, b in zip(nsub, nsub[1:]))
        assert all(b > a for a, b in zip(nhalo, nhalo[1:]))

    def test_substrate_solve_long_channel(self):
        node = node_by_name("90nm")
        optimizer = SuperVthOptimizer(node, Polarity.NFET)
        n_sub = optimizer.solve_substrate()
        assert 1e17 < n_sub < 1e19


class TestFamilyTrends:
    def test_ss_degrades_monotonically(self, super_family):
        ss = [d.nfet.ss_mv_per_dec for d in super_family.designs]
        assert all(b > a for a, b in zip(ss, ss[1:]))

    def test_ss_90nm_near_80(self, super_family):
        assert super_family.designs[0].nfet.ss_mv_per_dec == pytest.approx(
            80.0, abs=6.0)

    def test_vth_sat_rises(self, super_family):
        vth = [d.nfet.vth_sat_cc(d.node.vdd_nominal)
               for d in super_family.designs]
        assert all(b > a for a, b in zip(vth, vth[1:]))
        assert 0.30 < vth[0] < 0.45

    def test_design_summary_keys(self, super_family):
        s = super_family.designs[0].summary()
        for key in ("l_poly_nm", "t_ox_nm", "n_sub_cm3", "n_halo_cm3",
                    "vdd", "vth_sat_mv", "ioff_pa_per_um", "ss_mv_per_dec",
                    "tau_ps"):
            assert key in s

    def test_strategy_label(self, super_family):
        assert super_family.strategy == "super-vth"
        assert all(d.strategy == "super-vth" for d in super_family.designs)


class TestFailureModes:
    def test_unreachable_budget_raises(self):
        # A 1 zA/um budget cannot be met with bounded doping.
        impossible = NodeSpec("test", 32.0, 22.0, 1.53, 0.9, 1e-21, 3)
        with pytest.raises(OptimizationError):
            SuperVthOptimizer(impossible, Polarity.NFET).optimize()

    def test_single_design_build(self):
        design = build_super_vth_design(node_by_name("65nm"))
        assert design.node.name == "65nm"
        assert design.vdd == pytest.approx(1.1)
