"""Tests for the equivalent-gate (NAND/NOR) extension."""

import pytest

from repro.circuit.gates import nand2, nor2
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def gates(nfet90, pfet90):
    return (nand2(nfet90, pfet90, vdd=0.25),
            nor2(nfet90, pfet90, vdd=0.25))


class TestReduction:
    def test_nand_halves_pulldown_width(self, gates, nfet90):
        nand, _ = gates
        assert nand.inverter.nfet.geometry.width_um == pytest.approx(
            nfet90.geometry.width_um / 2.0)

    def test_nor_halves_pullup_width(self, gates, pfet90):
        _, nor = gates
        assert nor.inverter.pfet.geometry.width_um == pytest.approx(
            pfet90.geometry.width_um / 2.0)

    def test_logical_effort_values(self, gates):
        nand, nor = gates
        assert nand.logical_effort == pytest.approx(4.0 / 3.0)
        assert nor.logical_effort == pytest.approx(5.0 / 3.0)


class TestDelays:
    def test_gates_slower_than_inverter(self, gates, inverter_sub):
        from repro.circuit.delay import analytic_delay
        inv_delay = analytic_delay(inverter_sub)
        nand, nor = gates
        assert nand.delay(1) > inv_delay
        assert nor.delay(1) > inv_delay

    def test_nor_has_larger_logical_effort(self, gates):
        # Stacked PFETs give NOR the larger input-capacitance penalty;
        # with the average-edge drive model the delay ordering depends
        # on the beta ratio, so the robust claim is on logical effort.
        nand, nor = gates
        assert nor.logical_effort > nand.logical_effort
        c_nand = nand.inverter.input_capacitance() * nand.logical_effort
        c_nor = nor.inverter.input_capacitance() * nor.logical_effort
        assert c_nor > 0.0 and c_nand > 0.0

    def test_delay_grows_with_fanout(self, gates):
        nand, _ = gates
        assert nand.delay(4) > nand.delay(1)

    def test_rejects_zero_fanout(self, gates):
        nand, _ = gates
        with pytest.raises(ParameterError):
            nand.delay(0)


class TestLeakage:
    def test_worst_case_leakage_doubles(self, gates, inverter_sub):
        nand, _ = gates
        vdd = 0.25
        single = max(inverter_sub.nfet.i_off(vdd),
                     inverter_sub.pfet.i_off(vdd))
        assert nand.worst_case_leakage() >= single
