"""Behavioral tests for the SRAM-column array workloads."""

import numpy as np
import pytest

from repro.circuit.sram import SramCell, read_snm
from repro.circuit.sram_array import (bitline_leakage_vs_height,
                                      build_column, default_keeper_ohms,
                                      flip_time_scale_s, loaded_read_snm,
                                      min_write_pulse, storage_node_cap_f,
                                      write_trip_voltage)
from repro.errors import ParameterError

VDD = 0.25


@pytest.fixture(scope="module")
def cell(nfet90, pfet90):
    return SramCell(pulldown=nfet90.with_width_um(2.0),
                    pullup=pfet90.with_width_um(1.0),
                    access=nfet90.with_width_um(1.0), vdd=VDD)


class TestBuildColumn:
    def test_basic_shape(self, cell):
        col = build_column(cell, 3)
        assert col.n_rows == 3
        assert col.stored == (0, 0, 0)
        names = {s.name for s in col.circuit.sources}
        assert names == {"vdd", "wl0", "wl1", "wl2"}
        # 6 transistors per row.
        assert len(col.circuit.transistors) == 18
        # Floating bitlines carry caps plus keepers.
        cap_names = {c.name for c in col.circuit.capacitors}
        assert {"cbl", "cblb"} <= cap_names

    def test_stored_pattern_and_seed(self, cell):
        col = build_column(cell, 3, stored=[1, 0, 1])
        assert col.stored == (1, 0, 1)
        seeds = col.seed()
        assert seeds["q0"] == VDD and seeds["qb0"] == 0.0
        assert seeds["q1"] == 0.0 and seeds["qb1"] == VDD
        assert seeds["bl"] == VDD
        assert col.seed(bl_v=0.0)["bl"] == 0.0

    def test_drive_bitlines_replaces_caps_with_sources(self, cell):
        col = build_column(cell, 2, drive_bitlines=True)
        names = {s.name for s in col.circuit.sources}
        assert {"vbl", "vblb"} <= names
        assert not any(c.name in ("cbl", "cblb")
                       for c in col.circuit.capacitors)

    def test_probe_attaches_to_selected_row(self, cell):
        col = build_column(cell, 4, selected_row=2, probe="qb")
        probe = next(s for s in col.circuit.sources if s.name == "vprobe")
        assert probe.node == "qb2"

    @pytest.mark.parametrize("kwargs", [
        dict(n_rows=0),
        dict(n_rows=2, selected_row=2),
        dict(n_rows=2, selected_row=-1),
        dict(n_rows=2, stored=[0, 1, 0]),
        dict(n_rows=2, r_keeper_ohms=0.0),
        dict(n_rows=2, probe="x"),
    ])
    def test_rejects_bad_arguments(self, cell, kwargs):
        n_rows = kwargs.pop("n_rows")
        with pytest.raises(ParameterError):
            build_column(cell, n_rows, **kwargs)


class TestScales:
    def test_keeper_sags_two_percent_per_cell(self, cell):
        keeper = default_keeper_ohms(cell)
        sag = keeper * cell.access.i_off(VDD)
        assert sag == pytest.approx(0.02 * VDD)

    def test_flip_time_scale_is_cv_over_ion(self, cell):
        t = flip_time_scale_s(cell)
        assert t == pytest.approx(storage_node_cap_f(cell) * VDD
                                  / cell.access.i_on(VDD))
        assert 0.0 < t < 1.0


class TestLeakageLoading:
    def test_per_cell_leakage_shrinks_with_height(self, cell):
        out = bitline_leakage_vs_height(cell, (1, 2, 4, 8))
        assert out.heights == (1, 2, 4, 8)
        # Total grows, bitline sags, per-cell share strictly falls:
        # the loading effect of Mukhopadhyay et al.
        assert np.all(np.diff(out.i_bl_a) > 0.0)
        assert np.all(np.diff(out.v_bl) < 0.0)
        assert np.all(np.diff(out.per_cell_a) < 0.0)

    def test_leakage_total_is_sublinear(self, cell):
        out = bitline_leakage_vs_height(cell, (1, 8))
        assert out.i_bl_a[1] < 8.0 * out.i_bl_a[0]

    def test_vth_corner_moves_leakage(self, cell):
        lo = bitline_leakage_vs_height(cell, (4,), dvth_n_v=+0.02)
        hi = bitline_leakage_vs_height(cell, (4,), dvth_n_v=-0.02)
        assert hi.i_bl_a[0] > lo.i_bl_a[0]


class TestReadSnm:
    def test_loaded_snm_between_zero_and_pinned(self, cell):
        snm2 = loaded_read_snm(cell, 2, n_points=15)
        pinned = read_snm(cell)
        assert 0.0 < pinned < snm2 < VDD / 2.0

    def test_snm_degrades_with_height(self, cell):
        snm2 = loaded_read_snm(cell, 2, n_points=15)
        snm8 = loaded_read_snm(cell, 8, n_points=15)
        assert snm8 < snm2

    def test_rejects_too_few_points(self, cell):
        with pytest.raises(ParameterError):
            loaded_read_snm(cell, 2, n_points=4)


class TestWrite:
    def test_trip_voltage_within_rail(self, cell):
        trip = write_trip_voltage(cell, 2, ramp_taus=20.0, n_steps=60)
        assert 0.0 < float(trip) < VDD

    def test_trip_falls_with_weaker_access(self, cell):
        # Corners stay <= 0: at this 0.25 V cell the nominal trip is
        # already near ground, so a weakening corner would push it off
        # the ramp entirely (nan).
        corners = np.array([-0.03, -0.015, 0.0])
        trips = write_trip_voltage(cell, 2, dvth_n_v=corners,
                                   ramp_taus=20.0, n_steps=60)
        assert trips.shape == (3,)
        # A weaker (higher-Vth) access device needs the bitline pulled
        # further down before the cell flips.
        assert trips[2] < trips[1] < trips[0]

    def test_min_pulse_positive_and_monotone(self, cell):
        corners = np.array([-0.02, 0.02])
        widths = min_write_pulse(cell, 2, dvth_n_v=corners,
                                 n_probes=4, n_steps=24)
        assert np.all(np.isfinite(widths))
        assert np.all(widths > 0.0)
        assert widths[1] >= widths[0]

    def test_min_pulse_rejects_bad_horizon(self, cell):
        with pytest.raises(ParameterError):
            min_write_pulse(cell, 2, t_max_s=0.0)
