"""Tests for 1-D MOS electrostatics."""

import pytest

from repro.constants import nm_to_cm
from repro.device.doping import DopingProfile, HaloImplant
from repro.device.electrostatics import (
    body_factor,
    depletion_capacitance,
    depletion_width,
    flatband_voltage,
    self_consistent_channel_doping,
    slope_factor,
)
from repro.errors import ParameterError
from repro.materials.oxide import sio2


STACK = sio2(nm_to_cm(2.1))


class TestDepletionWidth:
    def test_typical_value(self):
        # ~2.4e-6 cm at 2e18, psi_s = 2 phi_F.
        w = depletion_width(2e18)
        assert 2.0e-6 < w < 3.0e-6

    def test_shrinks_with_doping(self):
        assert depletion_width(1e19) < depletion_width(1e18)

    def test_explicit_surface_potential(self):
        w1 = depletion_width(2e18, surface_potential_v=0.5)
        w2 = depletion_width(2e18, surface_potential_v=1.0)
        assert w2 == pytest.approx(w1 * 2.0 ** 0.5)

    def test_rejects_nonpositive_doping(self):
        with pytest.raises(ParameterError):
            depletion_width(0.0)

    def test_rejects_nonpositive_potential(self):
        with pytest.raises(ParameterError):
            depletion_width(1e18, surface_potential_v=-0.1)


class TestCapacitancesAndFactors:
    def test_depletion_capacitance_inverse_width(self):
        c = depletion_capacitance(2e18)
        w = depletion_width(2e18)
        assert c == pytest.approx(1.0359e-12 / w, rel=1e-3)

    def test_body_factor_value(self):
        g = body_factor(2e18, STACK)
        assert 0.3 < g < 0.8

    def test_body_factor_sqrt_doping(self):
        assert body_factor(4e18, STACK) == pytest.approx(
            2.0 * body_factor(1e18, STACK))

    def test_slope_factor_above_one(self):
        m = slope_factor(2e18, STACK)
        assert 1.1 < m < 1.6

    def test_slope_factor_grows_with_doping(self):
        assert slope_factor(1e19, STACK) > slope_factor(1e18, STACK)

    def test_slope_factor_grows_with_tox(self):
        thick = sio2(nm_to_cm(4.0))
        assert slope_factor(2e18, thick) > slope_factor(2e18, STACK)


class TestFlatband:
    def test_nplus_gate_negative(self):
        assert flatband_voltage(2e18, gate="n+poly") < -0.9

    def test_pplus_gate_mirror(self):
        assert flatband_voltage(2e18, gate="p+poly") == pytest.approx(
            -flatband_voltage(2e18, gate="n+poly"))

    def test_unknown_gate(self):
        with pytest.raises(ParameterError):
            flatband_voltage(2e18, gate="metal-midgap")


class TestSelfConsistency:
    def test_fixed_point_converges(self):
        geometry_scale = nm_to_cm(65.0)
        halo = HaloImplant(peak_cm3=3e18,
                           sigma_x_cm=0.175 * geometry_scale,
                           sigma_y_cm=0.225 * geometry_scale,
                           depth_cm=0.3 * geometry_scale)
        profile = DopingProfile(n_sub_cm3=1.2e18, halo=halo)
        n_eff, w_dep = self_consistent_channel_doping(
            profile, nm_to_cm(52.0))
        assert n_eff > profile.n_sub_cm3
        assert 5e-7 < w_dep < 5e-6
        # Verify it is a fixed point.
        n_check = profile.effective_channel_doping(nm_to_cm(52.0),
                                                   depth_limit_cm=w_dep)
        assert n_check == pytest.approx(n_eff, rel=1e-3)

    def test_halo_free_is_trivial_fixed_point(self):
        profile = DopingProfile(n_sub_cm3=1.5e18)
        n_eff, w_dep = self_consistent_channel_doping(profile, nm_to_cm(50.0))
        assert n_eff == pytest.approx(1.5e18)
        assert w_dep == pytest.approx(depletion_width(1.5e18), rel=1e-6)
