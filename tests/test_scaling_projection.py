"""Tests for the beyond-32nm projection."""

import pytest

from repro.scaling.projection import (
    project_sub_vth,
    project_super_vth,
    projected_node,
)


class TestProjectedNodes:
    def test_22nm_dimensions(self):
        node = projected_node(1)
        assert node.name == "22nm"
        assert node.l_poly_nm == pytest.approx(22.0 * 0.7)
        assert node.t_ox_nm == pytest.approx(1.53 * 0.9)
        assert node.vdd_nominal == pytest.approx(0.8)

    def test_16nm_dimensions(self):
        node = projected_node(2)
        assert node.name == "16nm"
        assert node.generation == 5

    def test_vdd_floored(self):
        far = projected_node(6)
        assert far.vdd_nominal == pytest.approx(0.5)

    def test_leakage_budget_compounds(self):
        assert projected_node(2).ioff_target_a_per_um == pytest.approx(
            195e-12 * 1.25 ** 2, rel=0.01)

    def test_rejects_zero_generations(self):
        with pytest.raises(ValueError):
            projected_node(0)


class TestProjections:
    def test_super_vth_slope_keeps_degrading(self):
        outcomes = project_super_vth()
        feasible = [o for o in outcomes if o.feasible]
        assert feasible, "super-vth infeasible already at 22nm?"
        ss = [o.design.nfet.ss_mv_per_dec for o in feasible]
        assert ss[-1] > 100.0

    def test_sub_vth_slope_stays_flat(self, sub_family):
        outcomes = project_sub_vth()
        assert all(o.feasible for o in outcomes)
        baseline = sub_family.design("32nm").nfet.ss_mv_per_dec
        for o in outcomes:
            assert abs(o.design.nfet.ss_mv_per_dec - baseline) < 3.0

    def test_super_halo_demand_explodes(self):
        outcomes = project_super_vth()
        feasible = [o for o in outcomes if o.feasible]
        halos = [o.design.nfet.profile.n_halo_net_cm3 for o in feasible]
        assert halos[-1] > 2.5e19

    def test_sub_vth_ioff_still_pinned(self):
        for o in project_sub_vth():
            assert o.design.nfet.i_off_per_um(0.30) == pytest.approx(
                100e-12, rel=0.01)
