"""Tests for the V_min-floored DVS policy (paper ref [17])."""

import pytest

from repro.circuit import InverterChain
from repro.circuit.dvs import (
    chain_rate_hz,
    dvs_range,
    energy_per_cycle_at_throughput,
    vdd_for_throughput,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def chain(nfet90, pfet90):
    from repro.circuit import Inverter
    return InverterChain(Inverter(nfet90, pfet90, 0.3), n_stages=30,
                         activity=0.1)


@pytest.fixture(scope="module")
def mep(chain):
    return chain.minimum_energy_point()


class TestVddForThroughput:
    def test_rate_monotone_in_vdd(self, chain):
        assert chain_rate_hz(chain, 0.4) > chain_rate_hz(chain, 0.25)

    def test_meets_target(self, chain):
        target = 2.0 * chain_rate_hz(chain, 0.25)
        vdd = vdd_for_throughput(chain, target)
        assert chain_rate_hz(chain, vdd) >= target * 0.999

    def test_is_minimal(self, chain):
        target = 2.0 * chain_rate_hz(chain, 0.25)
        vdd = vdd_for_throughput(chain, target)
        assert chain_rate_hz(chain, vdd - 0.01) < target

    def test_unreachable_target_raises(self, chain):
        with pytest.raises(ParameterError):
            vdd_for_throughput(chain, 1e15)

    def test_rejects_bad_target(self, chain):
        with pytest.raises(ParameterError):
            vdd_for_throughput(chain, 0.0)


class TestDvsPolicy:
    def test_energy_falls_toward_vmin_rate(self, chain, mep):
        f_vmin = chain_rate_hz(chain, mep.vmin)
        fast = energy_per_cycle_at_throughput(chain, 8.0 * f_vmin, mep)
        slow = energy_per_cycle_at_throughput(chain, 1.1 * f_vmin, mep)
        assert slow.energy_j < fast.energy_j

    def test_energy_saturates_below_vmin_rate(self, chain, mep):
        f_vmin = chain_rate_hz(chain, mep.vmin)
        at = energy_per_cycle_at_throughput(chain, 0.9 * f_vmin, mep)
        way_below = energy_per_cycle_at_throughput(chain, 0.2 * f_vmin, mep)
        # The Insomniac result: E/op stops improving; idle leakage even
        # pushes it up slightly as the duty cycle falls.
        assert way_below.energy_j >= at.energy_j * 0.98
        assert way_below.energy_j < 3.0 * at.energy_j

    def test_supply_floors_at_vmin(self, chain, mep):
        f_vmin = chain_rate_hz(chain, mep.vmin)
        point = energy_per_cycle_at_throughput(chain, 0.3 * f_vmin, mep)
        assert point.vdd == pytest.approx(mep.vmin)
        assert point.duty_cycle == pytest.approx(0.3, rel=1e-6)

    def test_above_vmin_full_duty(self, chain, mep):
        f_vmin = chain_rate_hz(chain, mep.vmin)
        point = energy_per_cycle_at_throughput(chain, 3.0 * f_vmin, mep)
        assert point.duty_cycle == 1.0
        assert point.vdd > mep.vmin


class TestDvsRange:
    def test_window(self, chain, mep):
        window = dvs_range(chain, vmax=0.9, mep=mep)
        assert window.vmin == pytest.approx(mep.vmin)
        assert window.throughput_dynamic_range > 10.0

    def test_rejects_vmax_below_vmin(self, chain, mep):
        with pytest.raises(ParameterError):
            dvs_range(chain, vmax=mep.vmin / 2.0, mep=mep)

    def test_sub_vth_strategy_wider_low_end(self, super_family, sub_family):
        # The sub-V_th design's lower V_min extends the DVS window's
        # low-energy end.
        chain_sup = InverterChain(super_family.design("32nm").inverter(0.3))
        chain_sub = InverterChain(sub_family.design("32nm").inverter(0.3))
        w_sup = dvs_range(chain_sup, vmax=0.9)
        w_sub = dvs_range(chain_sub, vmax=0.9)
        assert w_sub.vmin < w_sup.vmin
