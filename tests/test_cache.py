"""Tests for the caching layers (in-process memo + on-disk family cache)."""

import numpy as np
import pytest

from repro import perf
from repro.cache import (
    LRUMemo,
    cache_dir,
    clear_disk_cache,
    device_cache_enabled,
    device_memo,
    load_brackets,
    load_family,
    model_schema_hash,
    store_brackets,
    store_family,
)
from repro.device import nfet


class TestLRUMemo:
    def test_hit_and_miss_counters(self):
        memo = LRUMemo("testmemo", maxsize=4)
        perf.reset()
        assert memo.get("a") is None
        memo.put("a", 1)
        assert memo.get("a") == 1
        assert perf.get("cache.testmemo.misses") == 1
        assert perf.get("cache.testmemo.hits") == 1

    def test_eviction_is_lru(self):
        memo = LRUMemo("testmemo", maxsize=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1          # touch 'a' so 'b' is LRU
        memo.put("c", 3)
        assert memo.get("b") is None
        assert memo.get("a") == 1
        assert len(memo) == 2

    def test_clear(self):
        memo = LRUMemo("testmemo")
        memo.put("a", 1)
        memo.clear()
        assert memo.get("a") is None


class TestDeviceMemo:
    PARAMS = dict(l_poly_nm=63, t_ox_nm=2.1, n_sub_cm3=1.31e18,
                  n_p_halo_cm3=1.7e18)

    def test_identical_builds_share_one_object(self):
        assert nfet(**self.PARAMS) is nfet(**self.PARAMS)

    def test_different_parameters_differ(self):
        other = dict(self.PARAMS, n_sub_cm3=1.32e18)
        assert nfet(**self.PARAMS) is not nfet(**other)

    def test_opt_out_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE_CACHE", "0")
        assert not device_cache_enabled()
        assert nfet(**self.PARAMS) is not nfet(**self.PARAMS)

    def test_calibration_override_bypasses_stale_entries(self):
        from repro.scaling.sensitivity import calibration
        base = nfet(**self.PARAMS)
        with calibration(sce_prefactor=11.0):
            harsher = nfet(**self.PARAMS)
        assert harsher is not base
        assert harsher.ss_v_per_dec > base.ss_v_per_dec


class TestDiskCache:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_dir() is None
        assert load_family("family-super-vth") is None

    def test_round_trip(self, monkeypatch, tmp_path, super_family):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        perf.reset()
        assert load_family("family-test") is None        # cold: miss
        store_family("family-test", super_family)
        reloaded = load_family("family-test")            # warm: hit
        assert reloaded is not None
        assert reloaded.node_names() == super_family.node_names()
        original = super_family.design("32nm").nfet
        round_tripped = reloaded.design("32nm").nfet
        assert round_tripped.profile.n_sub_cm3 == original.profile.n_sub_cm3
        assert perf.get("cache.family.misses") == 1
        assert perf.get("cache.family.hits") == 1

    def test_schema_hash_versions_entries(self, monkeypatch, tmp_path,
                                          super_family):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_family("family-test", super_family)
        # A model change re-hashes the sources and misses the old entry.
        import repro.cache as cache_mod
        monkeypatch.setattr(cache_mod, "_SCHEMA_HASH", "deadbeefdeadbeef")
        assert load_family("family-test") is None

    def test_clear_disk_cache(self, monkeypatch, tmp_path, super_family):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_family("family-test", super_family)
        assert clear_disk_cache() == 1
        assert load_family("family-test") is None

    def test_schema_hash_is_stable(self):
        assert model_schema_hash() == model_schema_hash()
        assert len(model_schema_hash()) == 16


class TestBracketSpill:
    """On-disk warm-start brackets of the batched doping solver."""

    @staticmethod
    def _reqs():
        from repro.device.mosfet import Polarity
        from repro.scaling.batch import DopingSolveRequest
        from repro.scaling.roadmap import node_by_name
        node = node_by_name("90nm")
        return [
            DopingSolveRequest(node=node, l_poly_nm=l, halo_ratio=1.2,
                               polarity=Polarity.NFET, width_um=1.0,
                               ioff_target=100e-12, vdd_leak=0.25)
            for l in (65.0, 58.0)
        ]

    def test_replay_is_byte_deterministic(self, monkeypatch, tmp_path):
        import repro.cache as cache_mod
        from repro.scaling.batch import (
            reset_warm_starts,
            solve_substrate_stack,
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reqs = self._reqs()

        reset_warm_starts()
        perf.reset()
        cold = solve_substrate_stack(reqs)
        assert np.all(cold.feasible)
        assert perf.get("scaling.bracket_cold_misses") == len(reqs)
        assert perf.get("scaling.bracket_warm_hits") == 0
        table = load_brackets()
        assert table is not None and len(table) == len(reqs)

        # Simulate a fresh process: drop the in-process memo *and* the
        # cached table so the brackets really come back off disk.
        reset_warm_starts()
        with cache_mod._BRACKET_LOCK:
            cache_mod._BRACKET_TABLES.clear()
        perf.reset()
        replay = solve_substrate_stack(reqs)
        assert np.array_equal(replay.root_log10, cold.root_log10)
        assert np.array_equal(replay.feasible, cold.feasible)
        assert perf.get("scaling.bracket_warm_hits") == len(reqs)
        assert perf.get("scaling.bracket_cold_misses") == 0
        # Replayed brackets are below xtol: no bisection sweeps run.
        assert perf.get("scaling.doping_bisection_sweeps") == 0
        reset_warm_starts()

    def test_disk_layer_silent_when_disabled(self, monkeypatch):
        from repro.scaling.batch import (
            reset_warm_starts,
            solve_substrate_stack,
        )
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert load_brackets() is None
        store_brackets({"ignored": (1.0, 2.0)})
        reset_warm_starts()
        perf.reset()
        result = solve_substrate_stack(self._reqs())
        assert np.all(result.feasible)
        assert perf.get("scaling.bracket_warm_hits") == 0
        assert perf.get("scaling.bracket_cold_misses") == 0
        reset_warm_starts()

    def test_clear_disk_cache_drops_brackets(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_brackets({"key": (1.25, 1.25)})
        assert load_brackets() == {"key": [1.25, 1.25]}
        assert clear_disk_cache() == 1
        assert load_brackets() == {}


class TestMemoDefaultOn:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEVICE_CACHE", raising=False)
        assert device_cache_enabled()

    def test_memo_is_bounded(self):
        assert device_memo.maxsize >= 1024
