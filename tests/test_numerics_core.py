"""Property tests for the shared masked root-solve core.

The invariants the three batched engines rely on (see
``src/repro/numerics/rootsolve.py``):

* gather/scatter preserves lane order — every residual call sees a
  sorted subset of the original lane indices, and results land back in
  their own lanes regardless of which lanes retire first;
* NaN and infeasible lanes terminate without poisoning their
  neighbours;
* a sign-verified warm bracket of width <= ``xtol`` retires before the
  first sweep with exactly the midpoint a cold solve produces, while a
  stale bracket falls back to the full bounds;
* the compression counters tick per executed sweep.
"""

import numpy as np
import pytest

from repro import perf
from repro.numerics import (
    WarmStarts,
    array_namespace,
    bisect_illinois,
    bisect_masked,
    gather,
    newton_safeguarded,
    scatter,
)

XTOL = 1e-10


def _roots(n, lo=-0.9, hi=0.9, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, size=n)


class TestBackend:
    def test_array_namespace_defaults_to_numpy(self):
        xp = array_namespace(np.arange(3.0))
        assert xp.asarray is np.asarray or xp is np

    def test_explicit_namespace_wins(self):
        assert array_namespace(np.arange(3.0), xp=np) is np

    def test_gather_scatter_roundtrip_preserves_order(self):
        arr = np.arange(10.0)
        idx = np.array([7, 2, 5])
        taken = gather(arr, idx)
        assert np.array_equal(taken, [7.0, 2.0, 5.0])
        out = scatter(arr.copy(), idx, -taken)
        assert np.array_equal(out[idx], [-7.0, -2.0, -5.0])
        untouched = np.setdiff1d(np.arange(10), idx)
        assert np.array_equal(out[untouched], arr[untouched])


class TestBisectMasked:
    def test_lane_order_independent_of_retirement(self):
        # Wildly different bracket widths retire lanes at different
        # sweeps; every root must still land in its own lane.
        roots = _roots(64)
        widths = np.logspace(-9, 0, 64)
        lo = roots - widths
        hi = roots + widths

        def residual(x, idx):
            return x - roots[idx]

        solved = bisect_masked(residual, lo, hi, xtol=XTOL)
        assert np.all(np.abs(solved - roots) <= widths)
        assert np.all(np.abs(solved - roots) <= 2.0 * XTOL)

    def test_residual_sees_only_sorted_live_lanes(self):
        roots = _roots(32)
        lo = np.full(32, -1.0)
        hi = np.full(32, 1.0)
        seen = []

        def residual(x, idx):
            seen.append(idx.copy())
            assert np.all(np.diff(idx) > 0)
            return x - roots[idx]

        bisect_masked(residual, lo, hi, xtol=1e-6)
        sizes = [s.size for s in seen]
        assert sizes == sorted(sizes, reverse=True)
        for later in seen[1:]:
            assert np.all(np.isin(later, seen[0]))

    def test_collapsed_lanes_never_activate(self):
        roots = _roots(8)
        lo = roots.copy()
        hi = roots.copy()
        lo[0] -= 0.5
        hi[0] += 0.5

        def residual(x, idx):
            assert np.all(idx == 0)
            return x - roots[idx]

        solved = bisect_masked(residual, lo, hi, xtol=XTOL)
        assert solved[1:] == pytest.approx(roots[1:], abs=0.0)

    def test_nan_lanes_terminate_without_poisoning(self):
        roots = _roots(16)
        bad = np.zeros(16, dtype=bool)
        bad[3] = bad[11] = True

        def residual(x, idx):
            r = x - roots[idx]
            return np.where(bad[idx], np.nan, r)

        lo = np.full(16, -1.0)
        hi = np.full(16, 1.0)
        solved = bisect_masked(residual, lo, hi, xtol=XTOL)
        assert solved[~bad] == pytest.approx(roots[~bad], abs=2e-10)
        assert np.all(np.isfinite(solved))

    def test_compression_counters_tick(self):
        roots = _roots(10)
        before_total = perf.get("numerics.total_lanes")
        before_active = perf.get("numerics.active_lanes")
        bisect_masked(lambda x, idx: x - roots[idx],
                      np.full(10, -1.0), np.full(10, 1.0), xtol=1e-6)
        d_total = perf.get("numerics.total_lanes") - before_total
        d_active = perf.get("numerics.active_lanes") - before_active
        assert d_total > 0
        assert 0 < d_active <= d_total


class TestBisectIllinois:
    def test_matches_brentq_grade_accuracy(self):
        roots = _roots(40)

        def residual(x, idx):
            return np.expm1(x - roots[idx])

        result = bisect_illinois(residual, np.full(40, -1.0),
                                 np.full(40, 1.0), xtol=1e-12,
                                 warmup_sweeps=4)
        assert np.all(result.feasible)
        assert result.root == pytest.approx(roots, abs=1e-11)

    def test_warm_bracket_retires_bitwise(self):
        roots = _roots(6)
        lo = np.full(6, -1.0)
        hi = np.full(6, 1.0)

        def residual(x, idx):
            return x - roots[idx]

        cold = bisect_illinois(residual, lo, hi, xtol=1e-9)
        warm = bisect_illinois(
            residual, lo, hi, xtol=1e-9,
            warm_starts=WarmStarts(lo=np.asarray(cold.lo),
                                   hi=np.asarray(cold.hi),
                                   mask=np.ones(6, dtype=bool)))
        assert warm.sweeps == 0
        assert np.array_equal(warm.root, cold.root)
        assert np.all(warm.warm_used)
        # Sentinels document that the bounds were proven, not probed.
        assert np.all(np.isneginf(warm.r_lo))
        assert np.all(np.isposinf(warm.r_hi))

    def test_stale_warm_bracket_falls_back(self):
        roots = _roots(4)

        def residual(x, idx):
            return x - roots[idx]

        # Brackets that straddle nothing: sign check must reject them.
        stale = WarmStarts(lo=roots + 0.05, hi=roots + 0.06,
                           mask=np.ones(4, dtype=bool))
        result = bisect_illinois(residual, np.full(4, -1.0),
                                 np.full(4, 1.0), xtol=1e-10,
                                 warm_starts=stale)
        assert not np.any(result.warm_used)
        assert np.all(result.feasible)
        assert result.root == pytest.approx(roots, abs=1e-9)

    def test_infeasible_lanes_flagged_not_iterated(self):
        roots = np.array([0.0, 5.0])  # second root outside [-1, 1]

        def residual(x, idx):
            return x - roots[idx]

        result = bisect_illinois(residual, np.full(2, -1.0),
                                 np.full(2, 1.0), xtol=1e-10)
        assert bool(result.feasible[0]) and not bool(result.feasible[1])
        assert result.root[0] == pytest.approx(0.0, abs=1e-9)

    def test_decreasing_residual_negated_at_call_site(self):
        roots = _roots(5)

        def decreasing(x, idx):
            return roots[idx] - x

        result = bisect_illinois(lambda x, idx: -decreasing(x, idx),
                                 np.full(5, -1.0), np.full(5, 1.0),
                                 xtol=1e-11)
        assert result.root == pytest.approx(roots, abs=1e-10)


class TestNewtonSafeguarded:
    def test_quadratic_convergence_on_smooth_residual(self):
        roots = _roots(20)

        def residual_jacobian(x, idx):
            d = x - roots[idx]
            return d ** 3 + d, 3.0 * d ** 2 + 1.0

        solved = newton_safeguarded(residual_jacobian, np.full(20, -1.0),
                                    np.full(20, 1.0), xtol=1e-12)
        assert solved == pytest.approx(roots, abs=1e-11)

    def test_zero_derivative_falls_back_to_bisection(self):
        roots = _roots(8)

        def residual_jacobian(x, idx):
            return x - roots[idx], np.zeros_like(x)

        solved = newton_safeguarded(residual_jacobian, np.full(8, -1.0),
                                    np.full(8, 1.0), xtol=1e-9)
        assert solved == pytest.approx(roots, abs=1e-8)
