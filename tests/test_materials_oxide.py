"""Tests for gate-stack models."""

import pytest

from repro.constants import nm_to_cm
from repro.errors import ParameterError
from repro.materials.oxide import GateStack, hfo2, sio2


class TestGateStack:
    def test_sio2_eot_equals_physical(self):
        stack = sio2(nm_to_cm(2.1))
        assert stack.eot_cm == pytest.approx(stack.thickness_cm)

    def test_capacitance_value(self):
        stack = sio2(nm_to_cm(2.1))
        # eps_ox / t_ox = 3.45e-13 / 2.1e-7 ~ 1.64e-6 F/cm^2.
        assert stack.capacitance_per_area == pytest.approx(1.64e-6, rel=0.01)

    def test_capacitance_inverse_in_thickness(self):
        thin = sio2(nm_to_cm(1.0))
        thick = sio2(nm_to_cm(2.0))
        assert thin.capacitance_per_area == pytest.approx(
            2.0 * thick.capacitance_per_area)

    def test_scaled(self):
        stack = sio2(nm_to_cm(2.0)).scaled(0.9)
        assert stack.thickness_cm == pytest.approx(nm_to_cm(1.8))

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            sio2(nm_to_cm(2.0)).scaled(0.0)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ParameterError):
            GateStack(thickness_cm=0.0)

    def test_rejects_sub_unity_permittivity(self):
        with pytest.raises(ParameterError):
            GateStack(thickness_cm=1e-7, rel_permittivity=0.5)


class TestHighK:
    def test_hfo2_eot(self):
        stack = hfo2(nm_to_cm(1.0))
        assert stack.eot_cm == pytest.approx(nm_to_cm(1.0), rel=1e-6)

    def test_hfo2_physical_thickness_larger(self):
        stack = hfo2(nm_to_cm(1.0))
        assert stack.thickness_cm > 4.0 * stack.eot_cm

    def test_same_eot_same_capacitance(self):
        a = sio2(nm_to_cm(1.5))
        b = hfo2(nm_to_cm(1.5))
        assert a.capacitance_per_area == pytest.approx(
            b.capacitance_per_area, rel=1e-6)


class TestGateLeakage:
    def test_thinner_oxide_leaks_more(self):
        thin = sio2(nm_to_cm(1.2))
        thick = sio2(nm_to_cm(2.1))
        assert (thin.tunneling_leakage_a_cm2()
                > 100.0 * thick.tunneling_leakage_a_cm2())

    def test_highk_leaks_less_at_same_eot(self):
        # The physical-thickness advantage of high-k at equal EOT.
        assert (hfo2(nm_to_cm(1.2)).tunneling_leakage_a_cm2()
                < sio2(nm_to_cm(1.2)).tunneling_leakage_a_cm2())

    def test_rejects_negative_bias(self):
        with pytest.raises(ParameterError):
            sio2(nm_to_cm(2.0)).tunneling_leakage_a_cm2(-1.0)
