"""Tests for the liberty-lite cell characterisation."""

import pytest

from repro.circuit.cell_library import (
    LOAD_GRID,
    CellLibrary,
    characterise_cell,
    characterise_design,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def library(sub_family):
    return characterise_design(sub_family.design("32nm"), vdd=0.30)


class TestCellTiming:
    def test_all_cells_present(self, library):
        names = {c.name for c in library.cells}
        assert names == {"inv", "nand2", "nor2"}

    def test_delay_monotone_in_load(self, library):
        for cell in library.cells:
            delays = cell.delays_s
            assert all(b > a for a, b in zip(delays, delays[1:]))

    def test_delay_interpolation(self, library):
        cell = library.cell("inv")
        mid_load = 0.5 * (cell.loads_f[0] + cell.loads_f[1])
        value = cell.delay_at(mid_load)
        assert cell.delays_s[0] < value < cell.delays_s[1]

    def test_interpolation_range_checked(self, library):
        cell = library.cell("inv")
        with pytest.raises(ParameterError):
            cell.delay_at(cell.loads_f[-1] * 10.0)

    def test_drive_resistance_positive(self, library):
        for cell in library.cells:
            assert cell.drive_resistance_ohm > 0.0

    def test_gates_have_larger_input_cap_than_inverter(self, library):
        inv = library.cell("inv")
        assert library.cell("nand2").input_cap_f > inv.input_cap_f
        assert library.cell("nor2").input_cap_f > inv.input_cap_f

    def test_gate_leakage_exceeds_inverter(self, library):
        inv = library.cell("inv")
        assert library.cell("nand2").leakage_w > inv.leakage_w


class TestLibrary:
    def test_lookup_unknown(self, library):
        with pytest.raises(ParameterError):
            library.cell("xor9")

    def test_render_contains_cells(self, library):
        text = library.render()
        for name in ("inv", "nand2", "nor2"):
            assert name in text

    def test_rejects_bad_supply(self, sub_family):
        with pytest.raises(ParameterError):
            characterise_design(sub_family.design("32nm"), vdd=0.0)


class TestStrategyComparison:
    def test_sub_vth_library_faster_at_low_vdd(self, super_family,
                                               sub_family):
        lib_sup = characterise_design(super_family.design("32nm"), vdd=0.25)
        lib_sub = characterise_design(sub_family.design("32nm"), vdd=0.25)
        assert (lib_sub.cell("inv").delays_s[0]
                < lib_sup.cell("inv").delays_s[0])

    def test_higher_vdd_faster_cells(self, sub_family):
        slow = characterise_design(sub_family.design("32nm"), vdd=0.25)
        fast = characterise_design(sub_family.design("32nm"), vdd=0.35)
        assert (fast.cell("inv").delays_s[0]
                < slow.cell("inv").delays_s[0])
