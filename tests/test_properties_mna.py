"""Property-based tests for the nodal solver and serialization layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.compile import compile_circuit
from repro.circuit.mna import NodalSolver
from repro.circuit.mna_batch import solve_dc_batch
from repro.circuit.netlist import Circuit
from repro.device import nfet
from repro.io import device_from_dict, device_to_dict

resistances = st.floats(min_value=10.0, max_value=1e7)


class TestMnaLinearProperties:
    @settings(max_examples=25, deadline=None)
    @given(r_values=st.lists(resistances, min_size=2, max_size=6),
           v_src=st.floats(min_value=0.1, max_value=5.0))
    def test_ladder_matches_linear_algebra(self, r_values, v_src):
        """A resistor ladder solved by MNA equals the series-divider
        closed form."""
        c = Circuit()
        c.add_vsource("vs", "n0", v_src)
        for i, r in enumerate(r_values):
            bottom = "0" if i == len(r_values) - 1 else f"n{i + 1}"
            c.add_resistor(f"r{i}", f"n{i}", bottom, r)
        result = NodalSolver(c).solve_dc()
        total = sum(r_values)
        below = total
        for i, r in enumerate(r_values[:-1]):
            below -= r
            expected = v_src * below / total
            assert result[f"n{i + 1}"] == pytest.approx(expected, rel=1e-5,
                                                        abs=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(r1=resistances, r2=resistances,
           v_src=st.floats(min_value=0.1, max_value=3.0))
    def test_superposition_with_parallel_branches(self, r1, r2, v_src):
        """Two parallel resistors to ground: the node follows the
        divider with the parallel combination."""
        c = Circuit()
        c.add_vsource("vs", "a", v_src)
        c.add_resistor("rs", "a", "mid", 1e3)
        c.add_resistor("r1", "mid", "0", r1)
        c.add_resistor("r2", "mid", "0", r2)
        result = NodalSolver(c).solve_dc()
        r_par = r1 * r2 / (r1 + r2)
        expected = v_src * r_par / (1e3 + r_par)
        assert result["mid"] == pytest.approx(expected, rel=1e-5, abs=1e-9)


class TestInsertionOrderInvariance:
    """Canonical compilation: element insertion order is irrelevant.

    The compiler sorts elements by name before stamping, so two
    circuits with identical elements added in any order lower to
    bitwise-identical stamp matrices — and the batched DC solve is
    bitwise-reproducible across orders, not merely close.
    """

    @staticmethod
    def _latch_elements(device):
        vdd = 0.25
        return vdd, [
            ("vsource", "vdd", ("vdd", vdd)),
            ("vsource", "vwl", ("wl", 0.0)),
            ("resistor", "rk", ("vdd", "bl", 1e7)),
            ("mosfet", "m1", ("q", "qb", "0", device)),
            ("mosfet", "m2", ("qb", "q", "0", device)),
            ("mosfet", "max", ("bl", "wl", "q", device)),
            ("resistor", "r1", ("vdd", "q", 5e7)),
            ("resistor", "r2", ("vdd", "qb", 5e7)),
            ("capacitor", "cq", ("q", "0", 1e-15)),
        ]

    @staticmethod
    def _build(elements):
        c = Circuit()
        adders = {"vsource": c.add_vsource, "resistor": c.add_resistor,
                  "capacitor": c.add_capacitor, "mosfet": c.add_mosfet}
        for kind, name, args in elements:
            adders[kind](name, *args)
        return c

    @settings(max_examples=10, deadline=None)
    @given(order=st.permutations(range(9)))
    def test_permuted_build_is_bitwise_identical(self, order):
        device = nfet(65, 2.1, 1.2e18, 1.5e18)
        vdd, elements = self._latch_elements(device)
        reference = compile_circuit(self._build(elements))
        permuted = compile_circuit(
            self._build([elements[i] for i in order]))
        assert permuted.unknowns == reference.unknowns
        assert permuted.fixed == reference.fixed
        assert np.array_equal(permuted.g_linear, reference.g_linear)
        assert np.array_equal(permuted.c_linear, reference.c_linear)
        assert len(permuted.groups) == len(reference.groups)
        for got, want in zip(permuted.groups, reference.groups):
            assert got.names == want.names
            assert np.array_equal(got.drain_full, want.drain_full)
            assert np.array_equal(got.gate_full, want.gate_full)
            assert np.array_equal(got.source_full, want.source_full)
        seeds = {"q": 0.0, "qb": vdd}
        base = solve_dc_batch(self._build(elements),
                              stimulus={"vwl": np.array([0.0, vdd])},
                              initial=seeds)
        swapped = solve_dc_batch(self._build([elements[i] for i in order]),
                                 stimulus={"vwl": np.array([0.0, vdd])},
                                 initial=seeds)
        for node in base.voltages:
            assert np.array_equal(base[node], swapped[node])


class TestDeviceSerializationProperties:
    @settings(max_examples=15, deadline=None)
    @given(l_poly=st.floats(min_value=20.0, max_value=120.0),
           t_ox=st.floats(min_value=1.2, max_value=3.0),
           n_sub=st.floats(min_value=5e17, max_value=4e18),
           halo=st.floats(min_value=0.0, max_value=8e18))
    def test_round_trip_preserves_metrics(self, l_poly, t_ox, n_sub, halo):
        device = nfet(l_poly, t_ox, n_sub, halo)
        clone = device_from_dict(device_to_dict(device))
        assert clone.ss_v_per_dec == pytest.approx(device.ss_v_per_dec)
        assert clone.i_off(1.0) == pytest.approx(device.i_off(1.0))
        assert clone.capacitance.c_gate == pytest.approx(
            device.capacitance.c_gate)


class TestIvVectorisationProperties:
    @settings(max_examples=15, deadline=None)
    @given(vgs=st.floats(min_value=0.0, max_value=1.2),
           vds=st.floats(min_value=0.0, max_value=1.2))
    def test_scalar_equals_vector_element(self, vgs, vds):
        device = nfet(65, 2.1, 1.2e18, 1.5e18)
        scalar = device.ids(vgs, vds)
        vector = device.iv.ids(np.array([vgs, vgs]), np.array([vds, vds]))
        assert scalar == pytest.approx(float(vector[0]), rel=1e-12,
                                       abs=1e-30)
        assert float(vector[0]) == float(vector[1])
