"""Tests for engineering-notation parsing and formatting."""

import pytest

from repro.errors import ParameterError
from repro.units import format_quantity, parse_quantity, per_cm, per_micron


class TestParseQuantity:
    def test_picoamp(self):
        assert parse_quantity("100pA", "A") == pytest.approx(1e-10)

    def test_millivolt(self):
        assert parse_quantity("250mV", "V") == pytest.approx(0.25)

    def test_nanometre(self):
        assert parse_quantity("2.1nm", "nm") == pytest.approx(2.1)

    def test_plain_number(self):
        assert parse_quantity("1.2V", "V") == pytest.approx(1.2)

    def test_exponent_notation(self):
        assert parse_quantity("1.5e18cm-3", "cm-3") == pytest.approx(1.5e18)

    def test_micro_prefix_u(self):
        assert parse_quantity("3uA", "A") == pytest.approx(3e-6)

    def test_micro_prefix_mu(self):
        assert parse_quantity("3µA", "A") == pytest.approx(3e-6)

    def test_mega_prefix(self):
        assert parse_quantity("2MHz", "Hz") == pytest.approx(2e6)

    def test_negative_value(self):
        assert parse_quantity("-56mV", "V") == pytest.approx(-0.056)

    def test_wrong_unit_rejected(self):
        with pytest.raises(ParameterError):
            parse_quantity("100pA", "V")

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            parse_quantity("not a number", "V")


class TestFormatQuantity:
    def test_picoamp(self):
        assert format_quantity(1e-10, "A") == "100pA"

    def test_millivolt(self):
        assert format_quantity(0.25, "V") == "250mV"

    def test_zero(self):
        assert format_quantity(0.0, "V") == "0V"

    def test_unity(self):
        assert format_quantity(1.0, "V") == "1V"

    def test_large(self):
        assert format_quantity(2.5e6, "Hz") == "2.5MHz"

    def test_roundtrip(self):
        for value in (1e-10, 2.2e-15, 0.25, 1.2, 3.3e3):
            text = format_quantity(value, "X", digits=6)
            assert parse_quantity(text, "X") == pytest.approx(value, rel=1e-4)

    def test_negative(self):
        assert format_quantity(-0.056, "V") == "-56mV"


class TestWidthNormalisation:
    def test_per_micron(self):
        assert per_micron(1e-5) == pytest.approx(1e-9)

    def test_per_cm(self):
        assert per_cm(1e-9) == pytest.approx(1e-5)

    def test_roundtrip(self):
        assert per_cm(per_micron(0.123)) == pytest.approx(0.123)
