"""Tests for the MOSFET facade."""

import pytest

from repro.device import MOSFET, Polarity, nfet, pfet
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def n90():
    return nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


@pytest.fixture(scope="module")
def p90():
    return pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


class TestConstruction:
    def test_polarity(self, n90, p90):
        assert n90.polarity is Polarity.NFET
        assert p90.polarity is Polarity.PFET

    def test_default_widths(self, n90, p90):
        assert n90.geometry.width_um == pytest.approx(1.0)
        assert p90.geometry.width_um == pytest.approx(2.0)

    def test_halo_free_construction(self):
        dev = nfet(65, 2.1, 1.5e18)
        assert dev.profile.halo is None

    def test_submodels_available(self, n90):
        assert n90.iv is not None
        assert n90.capacitance is not None
        assert n90.threshold is not None


class TestDerivedMetrics:
    def test_ss_in_plausible_band(self, n90):
        assert 70.0 < n90.ss_mv_per_dec < 100.0

    def test_ss_units_consistent(self, n90):
        assert n90.ss_mv_per_dec == pytest.approx(1000.0 * n90.ss_v_per_dec)

    def test_pfet_slower(self, n90, p90):
        # Same doping/geometry scale, hole mobility: less current per um.
        assert p90.i_on_per_um(1.2) < n90.i_on_per_um(1.2)

    def test_on_off_ratio_large_at_nominal(self, n90):
        assert n90.on_off_ratio(1.2) > 1e4

    def test_intrinsic_delay_positive(self, n90):
        assert 0.0 < n90.intrinsic_delay(1.2) < 1e-9

    def test_vth_sat_cc_below_linear_cc(self, n90):
        assert n90.vth_sat_cc(1.2) < n90.vth_sat_cc(0.1)

    def test_per_um_normalisation(self, p90):
        assert p90.i_off_per_um(1.2) == pytest.approx(
            p90.i_off(1.2) / 2.0)


class TestTransforms:
    def test_with_profile(self, n90):
        heavier = n90.with_profile(n90.profile.with_substrate(3e18))
        assert heavier.vth(0.1) > n90.vth(0.1)

    def test_with_geometry(self, n90):
        longer = n90.with_geometry(
            n90.geometry.with_gate_length(2.0 * n90.geometry.l_poly_cm))
        assert longer.ss_v_per_dec < n90.ss_v_per_dec

    def test_with_width_um(self, n90):
        assert n90.with_width_um(3.0).geometry.width_um == pytest.approx(3.0)

    def test_frozen(self, n90):
        with pytest.raises(Exception):
            n90.temperature_k = 400.0


class TestTemperature:
    def test_hot_device_leaks_more(self):
        cold = nfet(65, 2.1, 1.2e18, 1.5e18, temperature_k=300.0)
        hot = nfet(65, 2.1, 1.2e18, 1.5e18, temperature_k=360.0)
        assert hot.i_off(1.2) > 3.0 * cold.i_off(1.2)

    def test_hot_device_worse_slope(self):
        cold = nfet(65, 2.1, 1.2e18, 1.5e18, temperature_k=300.0)
        hot = nfet(65, 2.1, 1.2e18, 1.5e18, temperature_k=360.0)
        assert hot.ss_mv_per_dec > cold.ss_mv_per_dec
