"""Direct tests for the transient-heavy figure experiments.

fig4/fig5/fig10/fig11/fig12 involve transient simulation or V_min
sweeps and therefore run slower than the unit suite average; they are
here (in addition to the benchmark suite) so that `pytest tests/`
alone certifies every paper artefact.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.mark.parametrize("experiment_id",
                         ["fig1", "fig4", "fig5", "fig10", "fig11", "fig12"])
def test_figure_claims_hold(experiment_id):
    result = run_experiment(experiment_id)
    failing = [c.claim for c in result.comparisons if not c.holds]
    assert not failing, f"{experiment_id}: {failing}"


class TestFig4Shape:
    def test_snm_loss_exceeds_paper_floor(self):
        result = run_experiment("fig4")
        snm = result.get_series("SNM @250mV")
        assert snm.total_change() < -0.10


class TestFig5Shape:
    def test_delay_trends_opposite_at_two_supplies(self):
        result = run_experiment("fig5")
        nominal = result.get_series("delay @nominal Vdd")
        sub = result.get_series("delay @250mV")
        assert nominal.total_change() < 0.0 < sub.total_change()


class TestFig10Shape:
    def test_advantage_grows_with_scaling(self):
        result = run_experiment("fig10")
        sup = result.get_series("SNM super-vth @250mV")
        sub = result.get_series("SNM sub-vth @250mV")
        advantage = sub.y / sup.y - 1.0
        assert advantage[-1] == max(advantage)


class TestFig11Shape:
    def test_crossover_by_32nm(self):
        result = run_experiment("fig11")
        sup = result.get_series("delay super-vth @250mV (normalized)")
        sub = result.get_series("delay sub-vth @250mV (normalized)")
        # Normalized each to its own 90nm point; compare trajectories.
        assert sub.y[-1] < 1.0 < sup.y[-1]


class TestFig12Shape:
    def test_vmin_gap_opens(self):
        result = run_experiment("fig12")
        v_sup = result.get_series("Vmin super-vth")
        v_sub = result.get_series("Vmin sub-vth")
        gap = v_sup.y - v_sub.y
        assert np.all(np.diff(gap) > -1.0)     # quasi-monotone opening
        assert gap[-1] > 25.0                  # mV at 32nm
