"""Tests for the interconnect model."""

import pytest

from repro.circuit.wires import (
    WireModel,
    wire_energy_per_transition,
)
from repro.errors import ParameterError
from repro.scaling.roadmap import node_by_name


class TestWireModel:
    def test_for_node_90nm_reference(self):
        model = WireModel.for_node(node_by_name("90nm"))
        assert model.c_f_per_um == pytest.approx(0.2e-15)
        assert model.r_ohm_per_um == pytest.approx(1.0)

    def test_resistance_grows_with_scaling(self):
        r90 = WireModel.for_node(node_by_name("90nm")).r_ohm_per_um
        r32 = WireModel.for_node(node_by_name("32nm")).r_ohm_per_um
        assert r32 == pytest.approx(r90 / 0.7 ** 6, rel=1e-6)

    def test_capacitance_constant_per_length(self):
        c90 = WireModel.for_node(node_by_name("90nm")).c_f_per_um
        c32 = WireModel.for_node(node_by_name("32nm")).c_f_per_um
        assert c32 == pytest.approx(c90)

    def test_totals_linear_in_length(self):
        model = WireModel.for_node(node_by_name("45nm"))
        assert model.capacitance(10.0) == pytest.approx(
            10.0 * model.c_f_per_um)
        assert model.resistance(10.0) == pytest.approx(
            10.0 * model.r_ohm_per_um)

    def test_rejects_negative_length(self):
        model = WireModel.for_node(node_by_name("45nm"))
        with pytest.raises(ParameterError):
            model.capacitance(-1.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ParameterError):
            WireModel(c_f_per_um=0.0, r_ohm_per_um=1.0)


class TestElmore:
    def test_quadratic_in_length(self):
        model = WireModel.for_node(node_by_name("32nm"))
        d1 = model.elmore_delay(100.0)
        d2 = model.elmore_delay(200.0)
        assert d2 == pytest.approx(4.0 * d1)

    def test_load_term(self):
        model = WireModel.for_node(node_by_name("32nm"))
        bare = model.elmore_delay(100.0)
        loaded = model.elmore_delay(100.0, c_load_f=1e-15)
        assert loaded - bare == pytest.approx(
            model.resistance(100.0) * 1e-15)

    def test_wire_delay_negligible_vs_subthreshold_gate(self, inverter_sub):
        # The reason the paper never mentions wire delay: a sub-V_th
        # gate delay (~ns) dwarfs local-wire RC (~ps) by orders.
        from repro.circuit.delay import analytic_delay
        model = WireModel.for_node(node_by_name("32nm"))
        gate = analytic_delay(inverter_sub)
        allowed = model.rc_negligible_below_um(gate, c_load_f=2e-15)
        assert allowed > 500.0       # ~1 mm-class before RC matters

    def test_budget_validation(self):
        model = WireModel.for_node(node_by_name("32nm"))
        with pytest.raises(ParameterError):
            model.rc_negligible_below_um(0.0)
        with pytest.raises(ParameterError):
            model.rc_negligible_below_um(1e-9, fraction=2.0)


class TestWireEnergy:
    def test_quadratic_in_vdd(self):
        model = WireModel.for_node(node_by_name("32nm"))
        e1 = wire_energy_per_transition(model, 10.0, 0.25)
        e2 = wire_energy_per_transition(model, 10.0, 0.50)
        assert e2 == pytest.approx(4.0 * e1)

    def test_comparable_to_gate_energy(self, inverter_sub):
        # A few um of wire costs energy comparable to a weak-inversion
        # gate: wire load cannot be ignored in sub-V_th energy budgets.
        model = WireModel.for_node(node_by_name("90nm"))
        wire = wire_energy_per_transition(model, 5.0, inverter_sub.vdd)
        gate = inverter_sub.input_capacitance() * inverter_sub.vdd ** 2
        assert 0.05 < wire / gate < 20.0

    def test_rejects_bad_vdd(self):
        model = WireModel.for_node(node_by_name("45nm"))
        with pytest.raises(ParameterError):
            wire_energy_per_transition(model, 1.0, 0.0)
