"""Tests for the provenance manifest (RunRecord / RunManifest)."""

import json

import numpy as np
import pytest

from repro import perf
from repro.analysis import Comparison, ExperimentResult, Series
from repro.analysis.manifest import (
    RunManifest,
    RunRecord,
    current_git_sha,
)
from repro.errors import ParameterError


@pytest.fixture()
def record():
    return RunRecord(
        experiment_id="fig0",
        title="A synthetic figure",
        wall_time_s=0.125,
        perf_counters={"poisson.solves": 7, "cache.device.hits": 3},
        git_sha="deadbeef" * 5,
        schema_hash="0123456789abcdef",
        comparisons=(
            Comparison(claim="holds", paper_value=1.0, measured_value=1.1,
                       unit="V", holds=True),
            Comparison(claim="fails", paper_value=2.0, measured_value=9.0,
                       holds=False, note="off"),
        ),
        n_series=1,
        n_rows=4,
    )


class TestRunRecord:
    def test_claim_counts(self, record):
        assert record.claims_total == 2
        assert record.claims_held == 1
        assert not record.all_hold()

    def test_round_trip(self, record):
        assert RunRecord.from_dict(record.to_dict()) == record

    def test_dict_is_json_safe(self, record):
        text = json.dumps(record.to_dict(), sort_keys=True)
        assert RunRecord.from_dict(json.loads(text)) == record

    def test_needs_id(self):
        with pytest.raises(ParameterError):
            RunRecord(experiment_id="", title="t", wall_time_s=0.0,
                      perf_counters={}, git_sha="x", schema_hash="y")

    def test_rejects_negative_wall_time(self):
        with pytest.raises(ParameterError):
            RunRecord(experiment_id="x", title="t", wall_time_s=-1.0,
                      perf_counters={}, git_sha="x", schema_hash="y")

    def test_kind_checked(self, record):
        payload = record.to_dict()
        payload["kind"] = "banana"
        with pytest.raises(ParameterError):
            RunRecord.from_dict(payload)

    def test_schema_checked(self, record):
        payload = record.to_dict()
        payload["schema"] = 99
        with pytest.raises(ParameterError):
            RunRecord.from_dict(payload)


class TestCapture:
    def test_record_runs_and_stamps(self):
        manifest = RunManifest(git_sha="testsha")
        result, record = manifest.record("table1")
        assert result.experiment_id == "table1"
        assert record.experiment_id == "table1"
        assert record.title == "Generalized scaling rules (Table 1)"
        assert record.git_sha == "testsha"
        assert record.schema_hash  # digest of the model sources
        assert record.wall_time_s >= 0.0
        assert record.comparisons == result.comparisons
        assert record.n_rows == len(result.rows)
        assert len(manifest) == 1

    def test_perf_counters_attributed(self):
        # eq3 sweeps a VTC -> device cache traffic must be attributed
        # to this run, not inherited from earlier ones.
        perf.bump("synthetic.preexisting", 5)
        manifest = RunManifest(git_sha="testsha")
        _result, record = manifest.record("eq3")
        assert "synthetic.preexisting" not in record.perf_counters
        assert any(name.startswith("cache.device.")
                   for name in record.perf_counters)
        assert all(isinstance(v, int) and v > 0
                   for v in record.perf_counters.values())

    def test_add_external_result(self):
        manifest = RunManifest(git_sha="testsha")
        result = ExperimentResult(
            experiment_id="table1", title="ignored: registry title wins",
            series=(Series(label="s", x=np.array([1.0, 2.0]),
                           y=np.array([3.0, 4.0])),),
        )
        record = manifest.add(result, wall_time_s=1.5,
                              perf_counters={"poisson.solves": 2})
        assert record.title == "Generalized scaling rules (Table 1)"
        assert record.wall_time_s == 1.5
        assert record.n_series == 1


class TestJsonl:
    def test_round_trip(self, tmp_path, record):
        manifest = RunManifest(git_sha="testsha")
        manifest.record("table1")
        path = tmp_path / "trace" / "manifest.jsonl"
        manifest.write_jsonl(path)
        restored = RunManifest.read_jsonl(path)
        assert restored == manifest.records

    def test_append_accumulates(self, tmp_path):
        manifest = RunManifest(git_sha="testsha")
        manifest.record("table1")
        path = tmp_path / "manifest.jsonl"
        manifest.write_jsonl(path)
        manifest.write_jsonl(path)
        assert len(RunManifest.read_jsonl(path)) == 2

    def test_overwrite_mode(self, tmp_path):
        manifest = RunManifest(git_sha="testsha")
        manifest.record("table1")
        path = tmp_path / "manifest.jsonl"
        manifest.write_jsonl(path)
        manifest.write_jsonl(path, append=False)
        assert len(RunManifest.read_jsonl(path)) == 1


class TestResultsPayload:
    def test_payload_structure(self):
        manifest = RunManifest(git_sha="testsha")
        manifest.record("table1")
        manifest.record("eq3")
        payload = manifest.results_payload()
        assert payload["kind"] == "results"
        assert payload["git_sha"] == "testsha"
        assert payload["schema_hash"] == manifest.schema_hash
        assert sorted(payload["experiments"]) == ["eq3", "table1"]
        entry = payload["experiments"]["table1"]
        assert entry["claims_total"] == entry["claims_held"]
        assert "perf_counters" in entry
        assert "wall_time_s" in entry

    def test_save_results_json(self, tmp_path):
        manifest = RunManifest(git_sha="testsha")
        manifest.record("table1")
        path = tmp_path / "results.json"
        manifest.save_results_json(path)
        payload = json.loads(path.read_text())
        assert payload["experiments"]["table1"]["n_rows"] > 0


class TestGitSha:
    def test_inside_repo(self):
        sha = current_git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_outside_repo(self, tmp_path):
        assert current_git_sha(tmp_path) == "unknown"
