"""Tests for the 1-D mesh."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.tcad.grid import Mesh1D


class TestGeometricMesh:
    def test_spans_exactly(self):
        mesh = Mesh1D.geometric(1e-5, n_nodes=101)
        assert mesh.nodes_cm[0] == 0.0
        assert mesh.nodes_cm[-1] == pytest.approx(1e-5)

    def test_node_count(self):
        mesh = Mesh1D.geometric(1e-5, n_nodes=151)
        assert mesh.n_nodes == 151

    def test_strictly_increasing(self):
        mesh = Mesh1D.geometric(2e-5, n_nodes=201)
        assert np.all(np.diff(mesh.nodes_cm) > 0.0)

    def test_first_step_respected(self):
        mesh = Mesh1D.geometric(1e-5, n_nodes=101, first_step_cm=1e-8)
        assert mesh.spacings_cm[0] == pytest.approx(1e-8, rel=1e-3)

    def test_grading_monotone(self):
        mesh = Mesh1D.geometric(1e-5, n_nodes=101)
        h = mesh.spacings_cm
        assert np.all(np.diff(h) >= -1e-20)

    def test_rejects_first_step_beyond_depth(self):
        with pytest.raises(ParameterError):
            Mesh1D.geometric(1e-8, first_step_cm=1e-7)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ParameterError):
            Mesh1D.geometric(1e-5, n_nodes=2)

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ParameterError):
            Mesh1D.geometric(0.0)


class TestControlVolumes:
    def test_sum_equals_depth(self):
        mesh = Mesh1D.geometric(1e-5, n_nodes=101)
        assert mesh.control_volumes_cm().sum() == pytest.approx(1e-5)

    def test_boundary_half_cells(self):
        mesh = Mesh1D.geometric(1e-5, n_nodes=101)
        volumes = mesh.control_volumes_cm()
        h = mesh.spacings_cm
        assert volumes[0] == pytest.approx(0.5 * h[0])
        assert volumes[-1] == pytest.approx(0.5 * h[-1])


class TestValidation:
    def test_rejects_nonzero_start(self):
        with pytest.raises(ParameterError):
            Mesh1D(np.array([1e-8, 2e-8, 3e-8]))

    def test_rejects_decreasing(self):
        with pytest.raises(ParameterError):
            Mesh1D(np.array([0.0, 2e-8, 1e-8]))

    def test_rejects_2d_array(self):
        with pytest.raises(ParameterError):
            Mesh1D(np.zeros((3, 3)))
