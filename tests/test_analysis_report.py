"""Tests for Comparison and ExperimentResult."""

import numpy as np
import pytest

from repro.analysis import Comparison, ExperimentResult, Series
from repro.errors import ParameterError


@pytest.fixture()
def result():
    series = Series(label="main", x=np.array([1.0, 2.0]),
                    y=np.array([3.0, 4.0]))
    comparisons = (
        Comparison(claim="good", paper_value=1.0, measured_value=1.1,
                   holds=True),
        Comparison(claim="bad", paper_value=1.0, measured_value=9.0,
                   holds=False, note="off"),
    )
    return ExperimentResult(
        experiment_id="test", title="A test", series=(series,),
        headers=("a", "b"), rows=(("x", 1.0),), comparisons=comparisons,
    )


class TestComparison:
    def test_render_ok(self):
        c = Comparison(claim="x", paper_value=1.0, measured_value=1.0)
        assert c.render().startswith("[OK ]")

    def test_render_miss(self):
        c = Comparison(claim="x", paper_value=1.0, measured_value=2.0,
                       holds=False)
        assert c.render().startswith("[MISS]")

    def test_note_included(self):
        c = Comparison(claim="x", paper_value=1.0, measured_value=1.0,
                       note="context")
        assert "context" in c.render()

    def test_unit_rendered_on_both_values(self):
        c = Comparison(claim="S_S flat", paper_value=80.0,
                       measured_value=78.3, unit="mV/dec")
        assert c.render().count("mV/dec") == 2

    def test_values_use_significant_figures(self):
        c = Comparison(claim="x", paper_value=0.001234,
                       measured_value=1234.5)
        text = c.render()
        assert "0.00123" in text
        assert "1230" in text

    def test_render_states_both_sides(self):
        c = Comparison(claim="energy falls", paper_value=0.77,
                       measured_value=0.75)
        text = c.render()
        assert "paper 0.770" in text
        assert "measured 0.750" in text


class TestExperimentResult:
    def test_get_series(self, result):
        assert result.get_series("main").label == "main"

    def test_get_missing_series(self, result):
        with pytest.raises(ParameterError):
            result.get_series("nope")

    def test_all_hold(self, result):
        assert not result.all_hold()

    def test_render_contains_everything(self, result):
        text = result.render()
        assert "A test" in text
        assert "main" in text
        assert "[MISS]" in text

    def test_rows_need_headers(self):
        with pytest.raises(ParameterError):
            ExperimentResult(experiment_id="x", title="t",
                             rows=(("a",),), headers=())

    def test_id_required(self):
        with pytest.raises(ParameterError):
            ExperimentResult(experiment_id="", title="t")
