"""Determinism, spill and reload of the precomputed metric grids.

The sharding contract under test: a shard is a pure function of
(spec, node, L ratio) because every shard starts from
``reset_warm_starts()``, so ``build_grid`` produces **byte-identical**
tensors for any ``--jobs`` value.  The spill contract: grids land in
the disk cache keyed by (axes digest, model schema hash), so a model
edit silently orphans stale tensors and ``load_grid`` reports a miss
instead of serving physics from an older revision.
"""

import numpy as np
import pytest

from repro import cache as cache_mod
from repro import perf
from repro.cache import grid_path
from repro.errors import ParameterError
from repro.service import GridSpec, build_grid, load_grid, store_grid
from repro.service.contract import ALL_METRICS, DESIGN_METRICS, VDD_METRICS

#: Smallest legal spec: 2 shards, 2 targets, 2 supplies (one node).
MICRO = GridSpec(nodes=("65nm",), l_ratios=(1.5, 2.0),
                 log10_ioff=(-10.5, -10.0), vdd_v=(0.25, 0.30))


@pytest.fixture(scope="module")
def micro_grid():
    return build_grid(MICRO)


class TestSpecValidation:
    def test_needs_a_node(self):
        with pytest.raises(ParameterError, match="at least one node"):
            GridSpec(nodes=(), l_ratios=(1.0, 2.0),
                     log10_ioff=(-11.0, -10.0), vdd_v=(0.2, 0.3))

    def test_axes_need_two_points(self):
        with pytest.raises(ParameterError, match="l_ratios"):
            GridSpec(nodes=("65nm",), l_ratios=(1.5,),
                     log10_ioff=(-11.0, -10.0), vdd_v=(0.2, 0.3))

    def test_axes_strictly_increasing(self):
        with pytest.raises(ParameterError, match="strictly increasing"):
            GridSpec(nodes=("65nm",), l_ratios=(2.0, 1.5),
                     log10_ioff=(-11.0, -10.0), vdd_v=(0.2, 0.3))

    def test_no_sub_unity_length_ratio(self):
        with pytest.raises(ParameterError, match="etched length"):
            GridSpec(nodes=("65nm",), l_ratios=(0.9, 2.0),
                     log10_ioff=(-11.0, -10.0), vdd_v=(0.2, 0.3))

    def test_vdd_positive(self):
        with pytest.raises(ParameterError, match="positive"):
            GridSpec(nodes=("65nm",), l_ratios=(1.5, 2.0),
                     log10_ioff=(-11.0, -10.0), vdd_v=(-0.1, 0.3))

    def test_grid_id_is_a_pure_axes_digest(self):
        same = GridSpec(nodes=("65nm",), l_ratios=(1.5, 2.0),
                        log10_ioff=(-10.5, -10.0), vdd_v=(0.25, 0.30))
        other = GridSpec(nodes=("65nm",), l_ratios=(1.5, 2.0),
                         log10_ioff=(-10.5, -10.0), vdd_v=(0.25, 0.35))
        assert same.grid_id() == MICRO.grid_id()
        assert other.grid_id() != MICRO.grid_id()

    def test_meta_round_trip_is_bitwise(self):
        again = GridSpec.from_meta(MICRO.to_meta())
        assert again == MICRO
        assert again.grid_id() == MICRO.grid_id()


class TestBuild:
    def test_shapes_and_finiteness(self, micro_grid):
        assert MICRO.shape == (1, 2, 2, 2)
        for metric in VDD_METRICS:
            assert micro_grid.tensors[metric].shape == (1, 2, 2, 2)
        for metric in DESIGN_METRICS:
            assert micro_grid.tensors[metric].shape == (1, 2, 2)
        # This window sits well inside the feasible region: every
        # metric must fill (NaN here would mean a solver regression).
        for metric in ALL_METRICS:
            assert np.isfinite(micro_grid.tensors[metric]).all(), metric

    def test_sharded_build_is_byte_identical(self, micro_grid):
        """The determinism contract: --jobs 2 equals --jobs 1 bitwise
        (each shard resets its warm starts; assembly is spec-ordered)."""
        perf.reset()
        sharded = build_grid(MICRO, jobs=2)
        for metric in ALL_METRICS:
            assert (sharded.tensors[metric].tobytes()
                    == micro_grid.tensors[metric].tobytes()), metric
        counts = perf.snapshot()
        assert counts["service.grid.shards"] == 2
        assert counts["service.grid.points"] == 8

    def test_rejects_bad_jobs(self):
        with pytest.raises(ParameterError, match="jobs"):
            build_grid(MICRO, jobs=0)


class TestSpill:
    def test_store_load_round_trip(self, micro_grid, monkeypatch,
                                   tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        micro_grid.error_bounds_rel = {m: 1e-4 for m in ALL_METRICS}
        path = store_grid(micro_grid)
        assert path is not None and path.exists()
        assert path.name.startswith(f"grid-{MICRO.grid_id()}-")
        loaded = load_grid(MICRO)
        assert loaded is not None
        assert loaded.spec == MICRO
        assert loaded.schema_hash == micro_grid.schema_hash
        assert loaded.error_bounds_rel == micro_grid.error_bounds_rel
        for metric in ALL_METRICS:
            assert (loaded.tensors[metric].tobytes()
                    == micro_grid.tensors[metric].tobytes()), metric

    def test_schema_hash_change_orphans_the_grid(self, micro_grid,
                                                 monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert store_grid(micro_grid) is not None
        assert load_grid(MICRO) is not None
        # A model-source edit changes the hash: the old file's name no
        # longer matches, so the load is a miss, never a stale answer.
        monkeypatch.setattr(cache_mod, "_SCHEMA_HASH",
                            "deadbeefdeadbeef")
        assert load_grid(MICRO) is None

    def test_corrupt_spill_is_a_miss(self, micro_grid, monkeypatch,
                                     tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_grid(micro_grid)
        grid_path(MICRO.grid_id()).write_bytes(b"not an npz")
        assert load_grid(MICRO) is None

    def test_noop_when_cache_disabled(self, micro_grid, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert store_grid(micro_grid) is None
        assert load_grid(MICRO) is None
