"""Tests for sheet-charge integration."""

import numpy as np
import pytest

from repro.constants import nm_to_cm
from repro.device.electrostatics import flatband_voltage
from repro.materials.oxide import sio2
from repro.tcad.charge import depletion_depth_cm, sheet_charges, surface_field_v_per_cm
from repro.tcad.grid import Mesh1D
from repro.tcad.poisson1d import solve_mos_poisson

N_SUB = 1.5e18
STACK = sio2(nm_to_cm(2.1))


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh1D.geometric(8e-6, n_nodes=181)
    doping = np.full(mesh.n_nodes, N_SUB)
    vfb = flatband_voltage(N_SUB)
    return mesh, doping, vfb


class TestSheetCharges:
    def test_inversion_charge_grows_with_vg(self, setup):
        mesh, doping, vfb = setup
        charges = []
        for vg in (vfb + 0.8, vfb + 1.4, vfb + 2.0):
            sol = solve_mos_poisson(mesh, doping, STACK, vg=vg, vfb=vfb)
            charges.append(sheet_charges(sol).inversion)
        assert charges[0] < charges[1] < charges[2]

    def test_inversion_exponential_below_threshold(self, setup):
        mesh, doping, vfb = setup
        # Two bias points in weak inversion: charge ratio ~ exp(dpsi/vT).
        sols = [solve_mos_poisson(mesh, doping, STACK, vg=vfb + v, vfb=vfb)
                for v in (0.6, 0.7)]
        q = [sheet_charges(s).inversion for s in sols]
        assert q[1] / q[0] > 5.0

    def test_depletion_charge_saturates(self, setup):
        mesh, doping, vfb = setup
        q1 = sheet_charges(solve_mos_poisson(mesh, doping, STACK,
                                             vg=vfb + 1.8, vfb=vfb)).depletion
        q2 = sheet_charges(solve_mos_poisson(mesh, doping, STACK,
                                             vg=vfb + 2.4, vfb=vfb)).depletion
        assert q2 == pytest.approx(q1, rel=0.10)

    def test_total_is_sum(self, setup):
        mesh, doping, vfb = setup
        sc = sheet_charges(solve_mos_poisson(mesh, doping, STACK,
                                             vg=vfb + 1.5, vfb=vfb))
        assert sc.total == pytest.approx(sc.inversion + sc.depletion)

    def test_gauss_law_consistency(self, setup):
        # Total semiconductor charge must equal eps_si * surface field.
        mesh, doping, vfb = setup
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb + 1.5, vfb=vfb)
        sc = sheet_charges(sol)
        field = surface_field_v_per_cm(sol)
        assert sc.total == pytest.approx(1.0359e-12 * field, rel=0.10)


class TestDepletionDepth:
    def test_grows_with_bias_then_saturates(self, setup):
        mesh, doping, vfb = setup
        depths = []
        for vg in (vfb + 0.5, vfb + 1.0, vfb + 2.0, vfb + 2.5):
            sol = solve_mos_poisson(mesh, doping, STACK, vg=vg, vfb=vfb)
            depths.append(depletion_depth_cm(sol))
        assert depths[0] < depths[1]
        assert depths[3] == pytest.approx(depths[2], rel=0.15)

    def test_zero_at_flat_band(self, setup):
        mesh, doping, vfb = setup
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb, vfb=vfb)
        assert depletion_depth_cm(sol) < 5.0 * mesh.nodes_cm[1]
