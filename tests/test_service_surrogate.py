"""Surrogate tier: accuracy bounds, NaN semantics, hull behaviour.

Two layers of coverage.  Synthetic-tensor tests exercise the
interpolation machinery (densify pass, log-space positives, NaN
confinement, hull edges) against analytic fields where the truth is
free.  The expensive test at the end is the acceptance bound: on a
serving-density window the measured worst-case relative error vs the
exact tier stays within ``SURROGATE_TOL_REL`` on every served metric.
"""

import math

import numpy as np
import pytest

from repro.service import SURROGATE_TOL_REL, fit_surrogate
from repro.service.contract import (ALL_METRICS, DESIGN_METRICS,
                                    VDD_METRICS)
from repro.service.grid import Grid, GridSpec
from repro.service.surrogate import (POSITIVE_METRICS, REFINE,
                                     _refine_axis)

#: Axes dense enough for the densify pass (>= 4 points everywhere).
SPEC = GridSpec(nodes=("65nm",),
                l_ratios=(1.0, 1.2, 1.4, 1.6, 1.8),
                log10_ioff=(-11.0, -10.5, -10.0, -9.5),
                vdd_v=(0.20, 0.25, 0.30, 0.35))


def _field(l, t, v):
    """A smooth positive analytic stand-in for a metric surface."""
    return math.exp(0.3 * l - 0.1 * t + 0.8 * v)


def synthetic_grid(nan_cell=None):
    """A Grid whose tensors sample ``_field`` (optionally with one
    NaN poked into V_dd-metric cell ``nan_cell``)."""
    shape = SPEC.shape
    vdd_tensor = np.empty(shape[1:])
    design_tensor = np.empty(shape[1:3])
    for i, l in enumerate(SPEC.l_ratios):
        for j, t in enumerate(SPEC.log10_ioff):
            design_tensor[i, j] = _field(l, t, 0.0)
            for k, v in enumerate(SPEC.vdd_v):
                vdd_tensor[i, j, k] = _field(l, t, v)
    tensors = {m: vdd_tensor[None].copy() for m in VDD_METRICS}
    tensors.update({m: design_tensor[None].copy()
                    for m in DESIGN_METRICS})
    if nan_cell is not None:
        for m in VDD_METRICS:
            tensors[m][(0, *nan_cell)] = np.nan
    return Grid(spec=SPEC, schema_hash="synthetic", tensors=tensors)


class TestMachinery:
    def test_refine_axis_keeps_original_knots_bitwise(self):
        axis = np.array([1.0, 1.3, 2.0])
        fine = _refine_axis(axis, REFINE)
        assert fine.shape[0] == (axis.shape[0] - 1) * REFINE + 1
        assert np.all(np.diff(fine) > 0)
        assert all(a in fine for a in axis)

    def test_knot_values_are_reproduced(self):
        surrogate = fit_surrogate(synthetic_grid())
        got = surrogate.query("65nm", 1.4, -10.5, 0.30)
        expected = _field(1.4, -10.5, 0.30)
        for metric in VDD_METRICS:
            assert got[metric] == pytest.approx(expected, rel=1e-12)
        for metric in DESIGN_METRICS:
            assert got[metric] == pytest.approx(
                _field(1.4, -10.5, 0.0), rel=1e-12)

    def test_densified_midpoints_beat_plain_linear(self):
        """The whole point of the densify pass: mid-cell error well
        under the coarse linear truncation error on a curved field."""
        surrogate = fit_surrogate(synthetic_grid())
        worst = 0.0
        for l, t, v in [(1.1, -10.75, 0.225), (1.5, -10.25, 0.325),
                        (1.7, -9.75, 0.275)]:
            got = surrogate.query("65nm", l, t, v)["ion_a_per_um"]
            truth = _field(l, t, v)
            worst = max(worst, abs(got - truth) / truth)
        assert worst < 2e-4

    def test_unknown_node_returns_none(self):
        surrogate = fit_surrogate(synthetic_grid())
        assert surrogate.query("32nm", 1.4, -10.5, 0.30) is None

    def test_out_of_hull_is_nan(self):
        surrogate = fit_surrogate(synthetic_grid())
        outside = surrogate.query("65nm", 1.4, -10.5, 0.50)
        assert all(math.isnan(outside[m]) for m in VDD_METRICS)
        assert all(math.isfinite(outside[m]) for m in DESIGN_METRICS)

    def test_metrics_subset_returns_only_requested(self):
        surrogate = fit_surrogate(synthetic_grid())
        got = surrogate.query("65nm", 1.4, -10.5, 0.30,
                              metrics=("vth_v", "vmin_v"))
        assert sorted(got) == ["vmin_v", "vth_v"]

    def test_nan_cell_disables_densify_and_stays_local(self):
        """A NaN cell demotes the slice to plain linear interpolation,
        where the NaN contaminates only its neighbouring cells — far
        cells still answer (and the server falls back to exact on the
        NaN ones)."""
        surrogate = fit_surrogate(synthetic_grid(nan_cell=(0, 0, 0)))
        near = surrogate.query("65nm", 1.05, -10.9, 0.21)
        far = surrogate.query("65nm", 1.7, -9.7, 0.33)
        assert math.isnan(near["ion_a_per_um"])
        assert math.isfinite(far["ion_a_per_um"])
        truth = _field(1.7, -9.7, 0.33)
        assert far["ion_a_per_um"] == pytest.approx(truth, rel=5e-3)

    def test_positive_metrics_interpolate_in_log_space(self):
        """log10-space interpolation reproduces an exponential field
        almost exactly even between knots (it is linear in the
        transformed space) — the behaviour direct interpolation of
        POSITIVE_METRICS would not show."""
        surrogate = fit_surrogate(synthetic_grid())
        got = surrogate.query("65nm", 1.3, -10.75, 0.275)
        for metric in POSITIVE_METRICS:
            truth = _field(1.3, -10.75, 0.275)
            assert got[metric] == pytest.approx(truth, rel=1e-9)


class TestAcceptanceBound:
    def test_error_bounds_within_tol(self, service_grid,
                                     service_surrogate):
        """The acceptance bound: measured worst-case relative error vs
        the exact tier <= SURROGATE_TOL_REL on every served metric, at
        serving axis density (the fixture validates at interior cell
        midpoints — the worst case of a cell-wise interpolant)."""
        bounds = service_grid.error_bounds_rel
        assert bounds is not None and sorted(bounds) == sorted(ALL_METRICS)
        for metric, bound in bounds.items():
            assert bound <= SURROGATE_TOL_REL, (metric, bound)
        assert service_surrogate.grid.error_bounds_rel is bounds
