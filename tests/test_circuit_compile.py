"""Tests for the netlist compiler (Circuit -> index arrays)."""

import numpy as np
import pytest

from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.errors import ParameterError

VDD = 0.25


def latch(nfet90, pfet90) -> Circuit:
    c = Circuit()
    c.add_vsource("vdd", "vdd", VDD)
    c.add_vsource("vwl", "wl", 0.0)
    c.add_inverter("i1", "q", "qb", "vdd", nfet90, pfet90)
    c.add_inverter("i2", "qb", "q", "vdd", nfet90, pfet90)
    c.add_mosfet("max", "bl", "wl", "q", nfet90)
    c.add_resistor("rk", "vdd", "bl", 1e7)
    c.add_capacitor("cq", "q", "0", 1e-15)
    return c


class TestNodeNumbering:
    def test_unknowns_first_then_ground_then_sources(self, nfet90, pfet90):
        compiled = compile_circuit(latch(nfet90, pfet90))
        assert compiled.unknowns == tuple(
            latch(nfet90, pfet90).unknown_nodes())
        assert compiled.fixed[0] == "0"
        assert set(compiled.fixed[1:]) == {"vdd", "wl"}
        assert compiled.n_total == len(compiled.node_names)
        assert compiled.n_unknown == len(compiled.unknowns)

    def test_source_position_keyed_by_name_and_node(self, nfet90, pfet90):
        compiled = compile_circuit(latch(nfet90, pfet90))
        pos_by_name = compiled.source_position["vwl"]
        pos_by_node = compiled.source_position["wl"]
        assert pos_by_name == pos_by_node
        assert compiled.fixed[pos_by_name] == "wl"
        assert compiled.source_names[pos_by_name] == "vwl"

    def test_fixed_base_evaluates_waveforms(self, nfet90, pfet90):
        compiled = compile_circuit(latch(nfet90, pfet90))
        base = compiled.fixed_base(0.0)
        assert base[0] == 0.0  # ground
        assert base[compiled.source_position["vdd"]] == VDD


class TestLinearStamps:
    def test_resistor_stamp_is_symmetric_conductance(self):
        c = Circuit()
        c.add_vsource("vs", "a", 1.0)
        c.add_resistor("r1", "a", "b", 2e3)
        c.add_resistor("r2", "b", "0", 2e3)
        compiled = compile_circuit(c)
        g = compiled.g_linear
        b = compiled.unknowns.index("b")
        assert g[b, b] == pytest.approx(1e-3)
        assert np.allclose(g, g.T)
        # Row sums vanish: conductance stamps are pure KCL.
        assert np.allclose(g.sum(axis=1), 0.0)

    def test_capacitor_stamp(self):
        c = Circuit()
        c.add_vsource("vs", "a", 1.0)
        c.add_resistor("r1", "a", "b", 1e3)
        c.add_capacitor("c1", "b", "0", 3e-15)
        compiled = compile_circuit(c)
        b = compiled.unknowns.index("b")
        assert compiled.c_linear[b, b] == pytest.approx(3e-15)


class TestTransistorGroups:
    def test_shared_device_forms_one_group(self, nfet90, pfet90):
        compiled = compile_circuit(latch(nfet90, pfet90))
        # Three nfet90 instances share one model; two pfet90 likewise.
        sizes = sorted(g.size for g in compiled.groups)
        assert sizes == [2, 3]
        for group in compiled.groups:
            assert group.size == len(group.names)
            assert group.drain_full.shape == (group.size,)

    def test_fixed_terminals_map_to_discard_column(self, nfet90, pfet90):
        compiled = compile_circuit(latch(nfet90, pfet90))
        n = compiled.n_unknown
        for group in compiled.groups:
            for idx, cols in ((group.drain_full, group.drain_col),
                              (group.source_full, group.source_col),
                              (group.gate_full, group.gate_col)):
                fixed_terminal = idx >= n
                assert np.all(cols[fixed_terminal] == n)
                assert np.all(cols[~fixed_terminal] == idx[~fixed_terminal])

    def test_groups_in_name_sorted_first_occurrence_order(self, nfet90,
                                                          pfet90):
        compiled = compile_circuit(latch(nfet90, pfet90))
        firsts = [g.names[0] for g in compiled.groups]
        assert firsts == sorted(firsts)
        for group in compiled.groups:
            assert list(group.names) == sorted(group.names)


class TestValidation:
    def test_rejects_invalid_topology(self, nfet90):
        c = Circuit()
        c.add_vsource("vs", "a", 1.0)
        c.add_resistor("r1", "a", "b", 1e3)
        # "g" is gate-only and undriven: no KCL equation exists for it.
        c.add_mosfet("m1", "b", "g", "0", nfet90)
        with pytest.raises(ParameterError):
            compile_circuit(c)

    def test_compilation_does_not_mutate(self, nfet90, pfet90):
        c = latch(nfet90, pfet90)
        before = (len(c.sources), len(c.resistors), len(c.capacitors),
                  len(c.transistors))
        compile_circuit(c)
        after = (len(c.sources), len(c.resistors), len(c.capacitors),
                 len(c.transistors))
        assert before == after
        # Still extensible after compilation; recompiling picks it up.
        c.add_resistor("rx", "q", "0", 1e9)
        assert "rx" in [r.name for r in c.resistors]
