"""Tests for bulk-silicon material models."""

import pytest

from repro.errors import ParameterError
from repro.materials.silicon import (
    bandgap_ev,
    built_in_potential,
    debye_length,
    fermi_potential,
    intrinsic_concentration,
)


class TestBandgap:
    def test_room_temperature(self):
        assert bandgap_ev(300.0) == pytest.approx(1.12, abs=0.01)

    def test_zero_kelvin(self):
        assert bandgap_ev(0.0) == pytest.approx(1.17)

    def test_narrows_with_temperature(self):
        assert bandgap_ev(400.0) < bandgap_ev(300.0) < bandgap_ev(200.0)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ParameterError):
            bandgap_ev(-1.0)


class TestIntrinsicConcentration:
    def test_reference_value_at_300k(self):
        assert intrinsic_concentration(300.0) == pytest.approx(1e10)

    def test_grows_steeply_with_temperature(self):
        # Roughly a decade per ~30 K around room temperature.
        ratio = intrinsic_concentration(330.0) / intrinsic_concentration(300.0)
        assert 3.0 < ratio < 30.0

    def test_rejects_zero_temperature(self):
        with pytest.raises(ParameterError):
            intrinsic_concentration(0.0)


class TestFermiPotential:
    def test_typical_channel_doping(self):
        assert fermi_potential(1.5e18) == pytest.approx(0.487, abs=0.01)

    def test_increases_with_doping(self):
        assert fermi_potential(1e18) < fermi_potential(1e19)

    def test_logarithmic_in_doping(self):
        step1 = fermi_potential(1e18) - fermi_potential(1e17)
        step2 = fermi_potential(1e19) - fermi_potential(1e18)
        assert step1 == pytest.approx(step2, rel=1e-6)

    def test_rejects_nonpositive_doping(self):
        with pytest.raises(ParameterError):
            fermi_potential(0.0)

    def test_rejects_intrinsic_doping(self):
        with pytest.raises(ParameterError):
            fermi_potential(1e9)


class TestBuiltInPotential:
    def test_typical_junction(self):
        vbi = built_in_potential(1e20, 1.5e18)
        assert 1.0 < vbi < 1.15

    def test_increases_with_both_sides(self):
        assert (built_in_potential(1e20, 1e18)
                < built_in_potential(1e20, 1e19))

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            built_in_potential(-1e20, 1e18)


class TestDebyeLength:
    def test_typical_value(self):
        # ~4 nm at 1e18 cm^-3.
        assert debye_length(1e18) == pytest.approx(4.1e-7, rel=0.1)

    def test_shrinks_with_doping(self):
        assert debye_length(1e19) < debye_length(1e17)

    def test_inverse_sqrt_scaling(self):
        assert debye_length(1e16) / debye_length(1e18) == pytest.approx(
            10.0, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            debye_length(0.0)
