"""Tests for physical constants and unit conversions."""

import math

import pytest

from repro.constants import (
    CM_PER_NM,
    CM_PER_UM,
    EPS_OX,
    EPS_OX_REL,
    EPS_SI,
    EPS_SI_REL,
    K_B,
    LN10,
    NI_300K,
    Q,
    cm_to_nm,
    cm_to_um,
    nm_to_cm,
    thermal_voltage,
    um_to_cm,
)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert thermal_voltage(300.0) == pytest.approx(0.025852, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(
            2.0 * thermal_voltage(300.0))

    def test_rejects_zero_temperature(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError):
            thermal_voltage(-10.0)


class TestPermittivities:
    def test_silicon_over_oxide_ratio_is_three(self):
        assert EPS_SI / EPS_OX == pytest.approx(EPS_SI_REL / EPS_OX_REL)
        assert EPS_SI_REL / EPS_OX_REL == pytest.approx(3.0)

    def test_absolute_values(self):
        assert EPS_SI == pytest.approx(1.0359e-12, rel=1e-3)
        assert EPS_OX == pytest.approx(3.453e-13, rel=1e-3)


class TestFundamental:
    def test_elementary_charge(self):
        assert Q == pytest.approx(1.602e-19, rel=1e-3)

    def test_boltzmann(self):
        assert K_B == pytest.approx(1.381e-23, rel=1e-3)

    def test_ln10(self):
        assert LN10 == pytest.approx(math.log(10.0))

    def test_intrinsic_concentration_reference(self):
        assert NI_300K == 1.0e10


class TestConversions:
    def test_nm_roundtrip(self):
        assert cm_to_nm(nm_to_cm(65.0)) == pytest.approx(65.0)

    def test_um_roundtrip(self):
        assert cm_to_um(um_to_cm(2.5)) == pytest.approx(2.5)

    def test_nm_to_cm_factor(self):
        assert nm_to_cm(1.0) == CM_PER_NM == 1e-7

    def test_um_to_cm_factor(self):
        assert um_to_cm(1.0) == CM_PER_UM == 1e-4

    def test_thousand_nm_is_one_um(self):
        assert nm_to_cm(1000.0) == pytest.approx(um_to_cm(1.0))
