"""The query server: contract enforcement, tiering, transports.

Covers the dispatcher against every error code in the taxonomy, the
surrogate-first/exact-fallback tiering with its provenance footer, the
**bitwise** agreement of the exact tier with the public scalar APIs
(the service must never invent a third set of physics), and both
asyncio transports driven through injected streams.
"""

import asyncio
import json
import math

import pytest

from repro import perf
from repro.cache import model_schema_hash
from repro.device.corners import Corner
from repro.device.mosfet import Polarity
from repro.scaling.batch import reset_warm_starts
from repro.scaling.roadmap import node_by_name
from repro.scaling.subvth import optimize_doping_for_length
from repro.service import DesignSpaceService, serve_stdio
from repro.service.contract import ALL_METRICS, PROTOCOL_VERSION
from repro.service.exact import corner_snm_vmin, exact_design, exact_point
from repro.service.server import _handle_http_client
from repro.service.surrogate import SURROGATE_TOL_REL

NODE = node_by_name("65nm")

#: An interior point of the conftest service grid (l_ratio 1.75).
IN_HULL = {"node": "65nm", "l_poly_nm": 1.75 * NODE.l_poly_nm,
           "ioff_target_a_per_um": 10.0 ** -10.3, "vdd_v": 0.28}

#: Same design point, but a supply off the grid's V_dd axis — inside
#: the exact tier's domain, so it answers via the fallback.
OFF_GRID = dict(IN_HULL, vdd_v=0.45)


@pytest.fixture(scope="module")
def service(service_surrogate):
    return DesignSpaceService(service_surrogate)


@pytest.fixture(scope="module")
def exact_only():
    return DesignSpaceService(surrogate=None)


class TestInfo:
    def test_info_reports_grid_and_bounds(self, service, service_spec):
        response = service.handle({"query": "info"})
        assert response["ok"] is True
        assert response["protocol"] == PROTOCOL_VERSION
        assert response["schema_hash"] == model_schema_hash()
        assert response["grid"]["grid_id"] == service_spec.grid_id()
        assert response["grid"]["axes"] == service_spec.to_meta()
        assert response["metrics"] == list(ALL_METRICS)
        bounds = response["error_bounds_rel"]
        assert bounds and all(bounds[m] <= SURROGATE_TOL_REL
                              for m in bounds)

    def test_exact_only_service_has_no_grid(self, exact_only):
        response = exact_only.handle({"query": "info"})
        assert response["ok"] is True
        assert response["grid"] is None
        assert response["error_bounds_rel"] is None


class TestMetricsQuery:
    def test_warm_query_answers_from_surrogate(self, service,
                                               service_spec):
        response = service.handle({"query": "metrics", **IN_HULL})
        assert response["ok"] is True
        assert sorted(response["values"]) == sorted(ALL_METRICS)
        assert all(isinstance(v, float) for v in
                   response["values"].values())
        prov = response["provenance"]
        assert prov["source"] == "surrogate"
        assert prov["grid_id"] == service_spec.grid_id()
        assert prov["schema_hash"] == model_schema_hash()
        assert prov["protocol"] == PROTOCOL_VERSION
        assert all(prov["error_bound_rel"][m] <= SURROGATE_TOL_REL
                   for m in ALL_METRICS)

    def test_metrics_subset(self, service):
        response = service.handle({"query": "metrics", **IN_HULL,
                                   "metrics": ["vth_v", "vmin_v"]})
        assert sorted(response["values"]) == ["vmin_v", "vth_v"]
        assert sorted(response["provenance"]["error_bound_rel"]) == [
            "vmin_v", "vth_v"]

    def test_off_grid_point_falls_back_to_exact_bitwise(self, service):
        """An in-domain point the grid does not cover answers from the
        exact tier — bitwise the values `exact_point` computes."""
        response = service.handle({"query": "metrics", **OFF_GRID})
        assert response["ok"] is True
        prov = response["provenance"]
        assert prov["source"] == "exact"
        assert prov["grid_id"] is None
        assert prov["error_bound_rel"] is None
        oracle = exact_point(NODE, OFF_GRID["l_poly_nm"],
                             OFF_GRID["ioff_target_a_per_um"],
                             OFF_GRID["vdd_v"])
        for metric in ALL_METRICS:
            assert response["values"][metric] == oracle[metric], metric

    def test_surrogate_agrees_with_exact_within_bound(self, service):
        """The served interpolation honours its recorded bound at an
        arbitrary interior point (not a validation midpoint)."""
        request = dict(IN_HULL, l_poly_nm=1.62 * NODE.l_poly_nm,
                       vdd_v=0.273)
        response = service.handle({"query": "metrics", **request})
        assert response["provenance"]["source"] == "surrogate"
        oracle = exact_point(NODE, request["l_poly_nm"],
                             request["ioff_target_a_per_um"],
                             request["vdd_v"])
        for metric in ALL_METRICS:
            rel = (abs(response["values"][metric] - oracle[metric])
                   / abs(oracle[metric]))
            assert rel <= 2.0 * SURROGATE_TOL_REL, (metric, rel)

    def test_id_echoed(self, service):
        response = service.handle({"query": "metrics", **IN_HULL,
                                   "id": 42})
        assert response["ok"] is True and response["id"] == 42


class TestExactTierParity:
    def test_joint_solve_equals_per_polarity_scalar_api(self):
        """`exact_design` solves NFET and PFET as one batched group
        stack; cold lanes are independent, so each winner is bitwise
        the device the public scalar API returns on its own."""
        l_poly_nm = 1.75 * NODE.l_poly_nm
        target = 10.0 ** -10.3
        design = exact_design(NODE, l_poly_nm, target)
        reset_warm_starts()
        n_oracle = optimize_doping_for_length(
            NODE, l_poly_nm, ioff_target=target)
        reset_warm_starts()
        p_oracle = optimize_doping_for_length(
            NODE, l_poly_nm, ioff_target=target,
            polarity=Polarity.PFET, width_um=2.0)
        assert design.nfet.profile.n_sub_cm3 == n_oracle.profile.n_sub_cm3
        assert (design.nfet.profile.n_p_halo_cm3
                == n_oracle.profile.n_p_halo_cm3)
        assert design.pfet.profile.n_sub_cm3 == p_oracle.profile.n_sub_cm3
        assert (design.pfet.profile.n_p_halo_cm3
                == p_oracle.profile.n_p_halo_cm3)


class TestErrorTaxonomy:
    def test_malformed_json(self, service):
        response = service.handle_line("{not json")
        assert response == {"ok": False, "error": "bad_request",
                            "message": response["message"]}
        assert "malformed JSON" in response["message"]

    def test_non_object_request(self, service):
        assert service.handle(42)["error"] == "bad_request"

    def test_unknown_query(self, service):
        response = service.handle({"query": "frobnicate"})
        assert response["error"] == "unknown_query"

    def test_unknown_node(self, service):
        response = service.handle(
            {"query": "metrics", **dict(IN_HULL, node="28nm")})
        assert response["error"] == "unknown_node"
        assert "28nm" in response["message"]

    def test_unknown_metric(self, service):
        response = service.handle({"query": "metrics", **IN_HULL,
                                   "metrics": ["iddq"]})
        assert response["error"] == "unknown_metric"

    def test_missing_required_field(self, service):
        request = {k: v for k, v in IN_HULL.items() if k != "vdd_v"}
        response = service.handle({"query": "metrics", **request})
        assert response["error"] == "bad_request"
        assert "vdd_v" in response["message"]

    def test_mistyped_field(self, service):
        response = service.handle(
            {"query": "metrics", **dict(IN_HULL, l_poly_nm="80")})
        assert response["error"] == "bad_request"

    def test_bool_is_not_a_number(self, service):
        response = service.handle(
            {"query": "metrics", **dict(IN_HULL, vdd_v=True)})
        assert response["error"] == "bad_request"

    def test_unknown_field_rejected(self, service):
        response = service.handle({"query": "metrics", **IN_HULL,
                                   "vddv": 0.3})
        assert response["error"] == "bad_request"
        assert "vddv" in response["message"]

    def test_stale_schema_pin(self, service):
        response = service.handle({"query": "metrics", **IN_HULL,
                                   "schema_hash": "0" * 16})
        assert response["error"] == "stale_schema"
        current = service.handle({"query": "metrics", **IN_HULL,
                                  "schema_hash": model_schema_hash()})
        assert current["ok"] is True

    def test_out_of_hull(self, service):
        response = service.handle(
            {"query": "metrics",
             **dict(IN_HULL, l_poly_nm=0.5 * NODE.l_poly_nm)})
        assert response["error"] == "out_of_hull"

    def test_id_echoed_on_errors(self, service):
        response = service.handle({"query": "frobnicate", "id": "q7"})
        assert response["id"] == "q7"

    def test_errors_bump_the_counter(self, service):
        perf.reset()
        service.handle({"query": "frobnicate"})
        counts = perf.snapshot()
        assert counts["service.queries"] == 1
        assert counts["service.errors"] == 1


class TestFlavourMenu:
    def test_menu_spans_tiers_with_mixed_provenance(self, service):
        """rvt sits on the grid; the x10 lvt and x0.1 hvt targets
        leave the grid's target axis but stay in-domain, so they
        answer exactly — the menu's provenance says 'mixed'."""
        response = service.handle({"query": "flavour_menu", **IN_HULL,
                                   "metrics": ["ioff_a_per_um",
                                               "vth_v"]})
        assert response["ok"] is True
        flavours = response["flavours"]
        assert sorted(flavours) == ["hvt", "lvt", "rvt"]
        base = IN_HULL["ioff_target_a_per_um"]
        assert flavours["lvt"]["ioff_target_a_per_um"] == 10.0 * base
        assert flavours["rvt"]["ioff_target_a_per_um"] == base
        assert flavours["hvt"]["ioff_target_a_per_um"] == 0.1 * base
        assert flavours["rvt"]["source"] == "surrogate"
        assert flavours["lvt"]["source"] == "exact"
        assert flavours["hvt"]["source"] == "exact"
        assert response["provenance"]["source"] == "mixed"
        # Lower leakage menu rung -> higher threshold.
        assert (flavours["hvt"]["values"]["vth_v"]
                > flavours["lvt"]["values"]["vth_v"])

    def test_menu_rejects_targets_leaving_the_domain(self, service):
        request = dict(IN_HULL, ioff_target_a_per_um=2e-13)
        response = service.handle({"query": "flavour_menu", **request})
        assert response["error"] == "out_of_hull"
        assert "hvt" in response["message"]


class TestSnmVmin:
    def test_tt_answers_from_surrogate(self, service):
        response = service.handle({"query": "snm_vmin", **IN_HULL})
        assert response["ok"] is True
        assert response["corner"] == "tt"
        assert sorted(response["values"]) == ["snm_mv", "vmin_v"]
        assert response["provenance"]["source"] == "surrogate"

    def test_shifted_corner_is_exact_and_bitwise(self, service):
        response = service.handle({"query": "snm_vmin", **IN_HULL,
                                   "corner": "ss"})
        assert response["ok"] is True
        assert response["corner"] == "ss"
        assert response["provenance"]["source"] == "exact"
        design = exact_design(NODE, IN_HULL["l_poly_nm"],
                              IN_HULL["ioff_target_a_per_um"])
        oracle = corner_snm_vmin(design, IN_HULL["vdd_v"], Corner.SS)
        for metric, value in oracle.items():
            expected = None if math.isnan(value) else value
            assert response["values"][metric] == expected

    def test_bad_corner(self, service):
        response = service.handle({"query": "snm_vmin", **IN_HULL,
                                   "corner": "sf"})
        assert response["error"] == "bad_request"


class _CollectingWriter:
    def __init__(self):
        self.chunks = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        pass

    def lines(self):
        return b"".join(self.chunks).decode().splitlines()


class TestStdioTransport:
    def test_round_trip(self, service):
        writer = _CollectingWriter()

        async def drive():
            # The reader must be created inside the running loop.
            reader = asyncio.StreamReader()
            reader.feed_data(
                json.dumps({"query": "info"}).encode() + b"\n")
            reader.feed_data(b"\n")      # blank lines are skipped
            reader.feed_data(b"{broken\n")
            reader.feed_data(json.dumps(
                {"query": "metrics", **IN_HULL, "id": 1}).encode()
                + b"\n")
            reader.feed_eof()            # EOF terminates the loop
            await serve_stdio(service, reader=reader, writer=writer)

        asyncio.run(drive())
        responses = [json.loads(line) for line in writer.lines()]
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"] == "bad_request"
        assert responses[2]["id"] == 1
        assert responses[2]["provenance"]["source"] == "surrogate"


class TestHttpTransport:
    @staticmethod
    def _exchange(service, raw: bytes):
        writer = _CollectingWriter()
        writer.close = lambda: None

        async def drive():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            await _handle_http_client(service, reader, writer)

        asyncio.run(drive())
        head, _sep, body = b"".join(writer.chunks).partition(b"\r\n\r\n")
        return head.decode(), json.loads(body) if body else None

    def test_post_query(self, service):
        payload = json.dumps({"query": "metrics", **IN_HULL}).encode()
        head, body = self._exchange(
            service,
            b"POST /query HTTP/1.1\r\nContent-Length: "
            + str(len(payload)).encode() + b"\r\n\r\n" + payload)
        assert "200 OK" in head
        assert body["ok"] is True
        assert body["provenance"]["source"] == "surrogate"

    def test_post_bad_query_is_http_400(self, service):
        payload = b'{"query": "frobnicate"}'
        head, body = self._exchange(
            service,
            b"POST /query HTTP/1.1\r\nContent-Length: "
            + str(len(payload)).encode() + b"\r\n\r\n" + payload)
        assert "400 Bad Request" in head
        assert body["error"] == "unknown_query"

    def test_get_info(self, service):
        head, body = self._exchange(service,
                                    b"GET /info HTTP/1.1\r\n\r\n")
        assert "200 OK" in head
        assert body["ok"] is True and body["grid"] is not None

    def test_unknown_target_is_404(self, service):
        head, body = self._exchange(service,
                                    b"GET /nope HTTP/1.1\r\n\r\n")
        assert "404 Not Found" in head
        assert body["error"] == "bad_request"
