"""Tests for the closed-form (Lambert-W) V_min model."""

import pytest

from repro.circuit.vmin_model import (
    energy_at_vmin_factor,
    k_vmin,
    validate_against_simulation,
    vmin_closed_form,
)
from repro.errors import ModelDomainError, ParameterError


class TestClosedForm:
    def test_plausible_range(self):
        assert 0.15 < vmin_closed_form(0.080) < 0.45

    def test_proportional_to_ss(self):
        assert vmin_closed_form(0.090) == pytest.approx(
            (0.090 / 0.080) * vmin_closed_form(0.080), rel=1e-9)

    def test_more_stages_higher_vmin(self):
        assert vmin_closed_form(0.08, n_stages=100) > vmin_closed_form(
            0.08, n_stages=10)

    def test_more_activity_lower_vmin(self):
        assert vmin_closed_form(0.08, activity=0.3) < vmin_closed_form(
            0.08, activity=0.05)

    def test_domain_error_at_high_activity(self):
        # alpha = 1 with a short chain: no interior optimum.
        with pytest.raises(ModelDomainError):
            vmin_closed_form(0.08, n_stages=1, activity=1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            vmin_closed_form(0.0)
        with pytest.raises(ParameterError):
            vmin_closed_form(0.08, n_stages=0)
        with pytest.raises(ParameterError):
            vmin_closed_form(0.08, activity=0.0)


class TestKVmin:
    def test_structure_constant_is_ss_independent(self):
        # The paper's K_Vmin depends only on the circuit, not scaling.
        assert k_vmin(0.070) == pytest.approx(k_vmin(0.095), rel=1e-9)

    def test_plausible_magnitude(self):
        # A 30-stage alpha=0.1 chain: a few decades of swing.
        assert 3.0 < k_vmin(0.080) < 7.0


class TestEnergyFactor:
    def test_scales_as_cl_ss_squared(self):
        e1 = energy_at_vmin_factor(0.080, 1e-15)
        e2 = energy_at_vmin_factor(0.080, 2e-15)
        assert e2 == pytest.approx(2.0 * e1)
        e3 = energy_at_vmin_factor(0.160, 1e-15)
        assert e3 == pytest.approx(4.0 * e1, rel=1e-9)

    def test_rejects_bad_load(self):
        with pytest.raises(ParameterError):
            energy_at_vmin_factor(0.08, 0.0)


class TestValidation:
    def test_known_overestimate_bias(self, inverter_sub):
        report = validate_against_simulation(inverter_sub.with_vdd(0.3))
        # Documented model bias: closed form sits above the simulated
        # optimum (moderate-inversion drive), within a factor ~2.2.
        assert report["vmin_closed_form"] > report["vmin_simulated"]
        assert report["vmin_closed_form"] < 2.2 * report["vmin_simulated"]

    def test_simulated_kvmin_also_constant(self, super_family):
        # The S_S-proportionality survives in full simulation: V_min/S_S
        # spread across the family is small (checked in integration
        # tests); here check the closed form ranks nodes identically.
        analytic = [vmin_closed_form(d.nfet.ss_v_per_dec)
                    for d in super_family.designs]
        assert all(b > a for a, b in zip(analytic, analytic[1:]))
