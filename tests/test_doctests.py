"""Run the docstring examples of the public modules.

Keeps the examples in module/function docstrings executable and
correct — they are the first code a new user copies.
"""

import doctest

import pytest

import repro.analysis.plotting
import repro.analysis.tables
import repro.constants
import repro.device.mosfet
import repro.materials.mobility
import repro.materials.silicon
import repro.scaling.compact_card
import repro.scaling.projection
import repro.scaling.roadmap
import repro.units
import repro.variability.rdf

MODULES = [
    repro.constants,
    repro.units,
    repro.materials.silicon,
    repro.materials.mobility,
    repro.device.mosfet,
    repro.scaling.roadmap,
    repro.scaling.projection,
    repro.scaling.compact_card,
    repro.variability.rdf,
    repro.analysis.tables,
    repro.analysis.plotting,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
