"""Tests for the weak-inversion current and S_S expressions."""

import math

import pytest

from repro.constants import LN10, nm_to_cm, thermal_voltage
from repro.device.subthreshold import (
    SCE_PREFACTOR_DEFAULT,
    TAUR_NING_PREFACTOR,
    decades_of_drive,
    inverse_subthreshold_slope,
    on_off_ratio,
    short_channel_slope_degradation,
    slope_factor_from_widths,
    subthreshold_current,
)
from repro.errors import ParameterError
from repro.materials.oxide import sio2

STACK = sio2(nm_to_cm(2.1))
W_DEP = 2.3e-6


class TestSlopeFactor:
    def test_formula(self):
        m = slope_factor_from_widths(nm_to_cm(2.1), W_DEP)
        assert m == pytest.approx(1.0 + 3.0 * nm_to_cm(2.1) / W_DEP)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            slope_factor_from_widths(0.0, W_DEP)


class TestShortChannelDegradation:
    def test_at_least_one(self):
        f = short_channel_slope_degradation(nm_to_cm(2.1), W_DEP,
                                            nm_to_cm(45.0))
        assert f >= 1.0

    def test_vanishes_at_long_channel(self):
        f = short_channel_slope_degradation(nm_to_cm(2.1), W_DEP,
                                            nm_to_cm(2000.0))
        assert f == pytest.approx(1.0, abs=1e-6)

    def test_monotone_in_length(self):
        values = [short_channel_slope_degradation(nm_to_cm(2.1), W_DEP,
                                                  nm_to_cm(l))
                  for l in (15, 30, 60, 120)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_textbook_prefactor_larger(self):
        calibrated = short_channel_slope_degradation(
            nm_to_cm(2.1), W_DEP, nm_to_cm(30.0))
        textbook = short_channel_slope_degradation(
            nm_to_cm(2.1), W_DEP, nm_to_cm(30.0),
            prefactor=TAUR_NING_PREFACTOR)
        assert textbook > calibrated
        assert TAUR_NING_PREFACTOR > SCE_PREFACTOR_DEFAULT

    def test_rejects_negative_prefactor(self):
        with pytest.raises(ParameterError):
            short_channel_slope_degradation(nm_to_cm(2.1), W_DEP,
                                            nm_to_cm(30.0), prefactor=-1.0)


class TestInverseSubthresholdSlope:
    def test_long_channel_limit_is_eq2a(self):
        ss = inverse_subthreshold_slope(STACK, W_DEP, l_eff_cm=None)
        m = slope_factor_from_widths(STACK.eot_cm, W_DEP)
        assert ss == pytest.approx(LN10 * thermal_voltage() * m)

    def test_90nm_class_value(self):
        ss = inverse_subthreshold_slope(STACK, W_DEP, nm_to_cm(52.0))
        assert 0.070 < ss < 0.095

    def test_bounded_below_by_thermal_limit(self):
        # S_S >= 60 mV/dec at 300 K, always.
        for w in (1e-6, 2e-6, 5e-6):
            ss = inverse_subthreshold_slope(STACK, w, nm_to_cm(100.0))
            assert ss > LN10 * thermal_voltage()

    def test_degrades_as_length_shrinks(self):
        long = inverse_subthreshold_slope(STACK, W_DEP, nm_to_cm(100.0))
        short = inverse_subthreshold_slope(STACK, W_DEP, nm_to_cm(18.0))
        assert short > long


class TestSubthresholdCurrent:
    def test_exponential_in_vgs(self):
        m, vth = 1.3, 0.4
        i1 = subthreshold_current(1e-6, 0.10, 0.5, vth, m)
        i2 = subthreshold_current(1e-6, 0.20, 0.5, vth, m)
        expected = math.exp(0.10 / (m * thermal_voltage()))
        assert i2 / i1 == pytest.approx(expected, rel=1e-9)

    def test_drain_saturation_factor(self):
        # For vds >> vT the (1 - exp(-vds/vT)) factor saturates at 1.
        i_small = subthreshold_current(1e-6, 0.1, 0.01, 0.4, 1.3)
        i_big = subthreshold_current(1e-6, 0.1, 0.5, 0.4, 1.3)
        assert i_small < i_big
        i_bigger = subthreshold_current(1e-6, 0.1, 1.0, 0.4, 1.3)
        assert i_bigger == pytest.approx(i_big, rel=1e-6)

    def test_at_threshold_equals_prefactor(self):
        i = subthreshold_current(1e-6, 0.4, 1.0, 0.4, 1.3)
        assert i == pytest.approx(1e-6, rel=1e-6)

    def test_rejects_bad_slope_factor(self):
        with pytest.raises(ParameterError):
            subthreshold_current(1e-6, 0.1, 0.5, 0.4, 0.9)


class TestRatios:
    def test_on_off_ratio(self):
        assert on_off_ratio(1e-6, 1e-10) == pytest.approx(1e4)

    def test_on_off_rejects_nonpositive_ioff(self):
        with pytest.raises(ParameterError):
            on_off_ratio(1e-6, 0.0)

    def test_decades_of_drive(self):
        assert decades_of_drive(0.25, 0.080) == pytest.approx(3.125)

    def test_decades_rejects_bad_slope(self):
        with pytest.raises(ParameterError):
            decades_of_drive(0.25, 0.0)
