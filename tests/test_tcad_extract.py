"""Tests for I-V parameter extraction."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.tcad.extract import (
    IdVgCurve,
    extract_dibl,
    extract_ss,
    extract_vth_constant_current,
    on_off_from_curve,
)


def synthetic_curve(vth=0.4, ss=0.08, i0=1e-6, vds=1.0, vmin=-0.2, vmax=1.0,
                    n=121):
    """An ideal exponential-then-linear transfer curve."""
    vgs = np.linspace(vmin, vmax, n)
    sub = i0 * 10.0 ** ((vgs - vth) / ss)
    strong = i0 * (1.0 + 8.0 * (vgs - vth) / ss * 0.1)
    ids = np.where(vgs < vth, sub, np.maximum(strong, i0))
    return IdVgCurve(vgs=vgs, ids=ids, vds=vds)


class TestIdVgCurve:
    def test_interpolation_loglinear(self):
        curve = synthetic_curve()
        mid = curve.current_at(0.2)
        assert mid == pytest.approx(1e-6 * 10 ** ((0.2 - 0.4) / 0.08),
                                    rel=0.01)

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            synthetic_curve().current_at(5.0)

    def test_rejects_decreasing_vgs(self):
        with pytest.raises(ParameterError):
            IdVgCurve(vgs=np.array([0.0, -0.1, 0.2, 0.3]),
                      ids=np.ones(4), vds=1.0)

    def test_rejects_nonpositive_current(self):
        with pytest.raises(ParameterError):
            IdVgCurve(vgs=np.linspace(0, 1, 5),
                      ids=np.array([1e-9, 1e-8, 0.0, 1e-6, 1e-5]), vds=1.0)

    def test_i_off(self):
        curve = synthetic_curve()
        assert curve.i_off == pytest.approx(curve.ids[0])


class TestVthExtraction:
    def test_recovers_known_vth(self):
        curve = synthetic_curve(vth=0.35)
        vth = extract_vth_constant_current(curve, 1e-6)
        assert vth == pytest.approx(0.35, abs=0.01)

    def test_criterion_outside_range(self):
        with pytest.raises(ParameterError):
            extract_vth_constant_current(synthetic_curve(), 1e3)

    def test_rejects_nonpositive_criterion(self):
        with pytest.raises(ParameterError):
            extract_vth_constant_current(synthetic_curve(), 0.0)


class TestSsExtraction:
    def test_recovers_known_slope(self):
        curve = synthetic_curve(ss=0.075)
        assert extract_ss(curve) == pytest.approx(0.075, rel=0.02)

    def test_window_validation(self):
        with pytest.raises(ParameterError):
            extract_ss(synthetic_curve(), decade_low=1.0, decade_high=2.0)


class TestDibl:
    def test_positive_dibl(self):
        lin = synthetic_curve(vth=0.45, vds=0.05)
        sat = synthetic_curve(vth=0.38, vds=1.05)
        dibl = extract_dibl(lin, sat, 1e-7)
        assert dibl == pytest.approx(70.0, rel=0.1)

    def test_order_enforced(self):
        lin = synthetic_curve(vds=0.05)
        sat = synthetic_curve(vds=1.0)
        with pytest.raises(ParameterError):
            extract_dibl(sat, lin, 1e-7)


class TestOnOff:
    def test_on_off_from_curve(self):
        curve = synthetic_curve()
        i_on, i_off = on_off_from_curve(curve, 1.0)
        assert i_on > i_off
        assert i_off == pytest.approx(curve.current_at(0.0), rel=0.01)
