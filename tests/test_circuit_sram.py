"""Tests for the 6T SRAM extension."""

import pytest

from repro.circuit.sram import SramCell, hold_snm, read_snm
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def cell(nfet90, pfet90):
    # Classic sizing: strong pull-down, weaker access, weak pull-up.
    return SramCell(
        pulldown=nfet90.with_width_um(2.0),
        pullup=pfet90.with_width_um(1.0),
        access=nfet90.with_width_um(1.0),
        vdd=0.30,
    )


class TestSramCell:
    def test_polarity_validation(self, nfet90, pfet90):
        with pytest.raises(ParameterError):
            SramCell(pulldown=pfet90, pullup=pfet90, access=nfet90, vdd=0.3)
        with pytest.raises(ParameterError):
            SramCell(pulldown=nfet90, pullup=nfet90, access=nfet90, vdd=0.3)
        with pytest.raises(ParameterError):
            SramCell(pulldown=nfet90, pullup=pfet90, access=pfet90, vdd=0.3)

    def test_rejects_nonpositive_vdd(self, nfet90, pfet90):
        with pytest.raises(ParameterError):
            SramCell(pulldown=nfet90, pullup=pfet90, access=nfet90, vdd=0.0)

    def test_hold_snm_positive(self, cell):
        assert hold_snm(cell) > 0.0

    def test_read_snm_below_hold(self, cell):
        assert read_snm(cell) < hold_snm(cell)

    def test_read_vtc_low_level_lifted(self, cell):
        # During a read the access device lifts the low storage node.
        inv_vtc = cell.inverter().vtc_point(cell.vdd)
        read_low = cell.read_vtc_point(cell.vdd)
        assert read_low > inv_vtc

    def test_read_vtc_monotone(self, cell):
        vins, vouts = cell.read_vtc(n_points=41)
        assert all(b <= a + 1e-9 for a, b in zip(vouts, vouts[1:]))

    def test_read_vtc_rejects_out_of_range(self, cell):
        with pytest.raises(ParameterError):
            cell.read_vtc_point(2.0)


class TestSupplySensitivity:
    def test_hold_snm_grows_with_vdd(self, nfet90, pfet90):
        def cell_at(vdd):
            return SramCell(pulldown=nfet90.with_width_um(2.0),
                            pullup=pfet90.with_width_um(1.0),
                            access=nfet90.with_width_um(1.0), vdd=vdd)
        assert hold_snm(cell_at(0.40)) > hold_snm(cell_at(0.25))

    def test_weaker_access_better_read_snm(self, nfet90, pfet90):
        strong_access = SramCell(pulldown=nfet90.with_width_um(2.0),
                                 pullup=pfet90.with_width_um(1.0),
                                 access=nfet90.with_width_um(2.0), vdd=0.3)
        weak_access = SramCell(pulldown=nfet90.with_width_um(2.0),
                               pullup=pfet90.with_width_um(1.0),
                               access=nfet90.with_width_um(0.5), vdd=0.3)
        assert read_snm(weak_access) > read_snm(strong_access)
