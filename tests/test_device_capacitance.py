"""Tests for gate/parasitic capacitances."""

import pytest

from repro.constants import nm_to_cm
from repro.device import nfet
from repro.device.capacitance import CapacitanceModel
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def dev():
    return nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


@pytest.fixture(scope="module")
def cap(dev):
    return dev.capacitance


class TestComponents:
    def test_intrinsic_value(self, cap, dev):
        expected = (dev.stack.capacitance_per_area
                    * dev.geometry.width_cm * dev.geometry.l_eff_cm)
        assert cap.c_gate_intrinsic == pytest.approx(expected)

    def test_overlap_both_sides(self, cap, dev):
        expected = (2.0 * dev.stack.capacitance_per_area
                    * dev.geometry.width_cm * dev.geometry.overlap_cm)
        assert cap.c_overlap == pytest.approx(expected)

    def test_fringe_positive(self, cap):
        assert cap.c_fringe > 0.0

    def test_gate_is_sum(self, cap):
        assert cap.c_gate == pytest.approx(
            cap.c_gate_intrinsic + cap.c_overlap + cap.c_fringe)

    def test_femto_farad_scale(self, cap):
        assert 1e-16 < cap.c_gate < 1e-14

    def test_junction_falls_with_reverse_bias(self, cap):
        assert cap.c_junction(1.0) < cap.c_junction(0.0)

    def test_junction_rejects_negative_bias(self, cap):
        with pytest.raises(ParameterError):
            cap.c_junction(-0.5)


class TestLoads:
    def test_fo1_exceeds_gate(self, cap):
        assert cap.c_load_fanout(1) > cap.c_gate

    def test_fanout_linear(self, cap):
        c1 = cap.c_load_fanout(1)
        c3 = cap.c_load_fanout(3)
        assert c3 - c1 == pytest.approx(2.0 * cap.c_gate, rel=1e-9)

    def test_fanout_zero_is_self_loading(self, cap):
        assert cap.c_load_fanout(0) == pytest.approx(cap.c_drain())

    def test_rejects_negative_fanout(self, cap):
        with pytest.raises(ParameterError):
            cap.c_load_fanout(-1)


class TestWeakInversionGateCap:
    def test_weak_below_strong(self, cap, dev):
        weak = cap.c_gate_weak(dev.slope_factor)
        assert weak < cap.c_gate

    def test_weak_keeps_parasitics(self, cap, dev):
        weak = cap.c_gate_weak(dev.slope_factor)
        assert weak > cap.c_overlap + cap.c_fringe

    def test_effective_interpolates(self, cap, dev):
        vth = dev.vth(0.25)
        weak = cap.c_gate_weak(dev.slope_factor)
        deep = cap.c_gate_effective(0.1, vth, dev.slope_factor)
        nominal = cap.c_gate_effective(1.2, vth, dev.slope_factor)
        assert deep == pytest.approx(weak, rel=0.05)
        assert nominal == pytest.approx(cap.c_gate, rel=0.05)
        mid = cap.c_gate_effective(vth, vth, dev.slope_factor)
        assert weak < mid < cap.c_gate

    def test_effective_monotone_in_vdd(self, cap, dev):
        vth = dev.vth(0.25)
        values = [cap.c_gate_effective(v, vth, dev.slope_factor)
                  for v in (0.1, 0.3, 0.5, 0.8, 1.2)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_weak_rejects_bad_slope(self, cap):
        with pytest.raises(ParameterError):
            cap.c_gate_weak(1.0)

    def test_effective_rejects_nonpositive_vdd(self, cap, dev):
        with pytest.raises(ParameterError):
            cap.c_gate_effective(0.0, 0.4, dev.slope_factor)


class TestScalingBehaviour:
    def test_longer_gate_more_intrinsic_cap(self):
        short = nfet(32, 1.7, 2e18, 2e18)
        long = nfet(64, 1.7, 2e18, 2e18, reference_nm=32)
        assert (long.capacitance.c_gate_intrinsic
                > 1.8 * short.capacitance.c_gate_intrinsic)
        # But parasitics are node-tied, so total grows less than 2x.
        assert long.capacitance.c_gate < 2.0 * short.capacitance.c_gate

    def test_thinner_oxide_more_cap(self):
        thick = nfet(65, 2.1, 1.2e18, 1.5e18)
        thin = nfet(65, 1.5, 1.2e18, 1.5e18)
        assert thin.capacitance.c_gate > thick.capacitance.c_gate
