"""Tests for chain energy and the V_min search."""

import numpy as np
import pytest

from repro.circuit.energy import chain_energy_per_cycle, find_vmin
from repro.errors import ParameterError


class TestChainEnergy:
    def test_components_positive(self, inverter_sub):
        e = chain_energy_per_cycle(inverter_sub)
        assert e.dynamic_j > 0.0
        assert e.leakage_j > 0.0
        assert e.total_j == pytest.approx(e.dynamic_j + e.leakage_j)

    def test_dynamic_linear_in_stages(self, inverter_sub):
        e10 = chain_energy_per_cycle(inverter_sub, n_stages=10)
        e20 = chain_energy_per_cycle(inverter_sub, n_stages=20)
        assert e20.dynamic_j == pytest.approx(2.0 * e10.dynamic_j)

    def test_leakage_quadratic_in_stages(self, inverter_sub):
        # Leakage integrates over the chain's own critical path, so it
        # grows as N^2.
        e10 = chain_energy_per_cycle(inverter_sub, n_stages=10)
        e20 = chain_energy_per_cycle(inverter_sub, n_stages=20)
        assert e20.leakage_j == pytest.approx(4.0 * e10.leakage_j, rel=1e-6)

    def test_dynamic_linear_in_activity(self, inverter_sub):
        lo = chain_energy_per_cycle(inverter_sub, activity=0.05)
        hi = chain_energy_per_cycle(inverter_sub, activity=0.10)
        assert hi.dynamic_j == pytest.approx(2.0 * lo.dynamic_j)
        assert hi.leakage_j == pytest.approx(lo.leakage_j)

    def test_leakage_fraction_bounds(self, inverter_sub):
        e = chain_energy_per_cycle(inverter_sub)
        assert 0.0 < e.leakage_fraction < 1.0

    def test_rejects_bad_activity(self, inverter_sub):
        with pytest.raises(ParameterError):
            chain_energy_per_cycle(inverter_sub, activity=1.5)

    def test_rejects_bad_stage_count(self, inverter_sub):
        with pytest.raises(ParameterError):
            chain_energy_per_cycle(inverter_sub, n_stages=0)

    def test_transient_mode_consistent(self, inverter_sub):
        fast = chain_energy_per_cycle(inverter_sub, transient=False)
        slow = chain_energy_per_cycle(inverter_sub, transient=True)
        assert slow.total_j == pytest.approx(fast.total_j, rel=0.5)


class TestVmin:
    def test_interior_minimum(self, inverter_sub):
        result = find_vmin(inverter_sub)
        assert 0.08 < result.vmin < 0.70

    def test_is_actually_minimal(self, inverter_sub):
        result = find_vmin(inverter_sub)
        e_at = result.energy.total_j
        for dv in (-0.03, 0.03):
            e_near = chain_energy_per_cycle(
                inverter_sub.with_vdd(result.vmin + dv)).total_j
            assert e_near >= e_at * 0.999

    def test_energy_curve_convex_around_minimum(self, inverter_sub):
        result = find_vmin(inverter_sub)
        grid = result.vdd_grid
        energy = result.energy_grid_j
        idx = int(np.argmin(energy))
        assert 0 < idx < len(grid) - 1

    def test_higher_activity_lowers_vmin(self, inverter_sub):
        # More switching -> dynamic term dominates -> optimum moves
        # down.  (At very high activity the interior optimum vanishes
        # entirely and V_min becomes the functionality floor, so both
        # points here use moderate activities.)
        lo = find_vmin(inverter_sub, activity=0.05)
        hi = find_vmin(inverter_sub, activity=0.20, vdd_lo=0.06)
        assert hi.vmin < lo.vmin

    def test_longer_chain_raises_vmin(self, inverter_sub):
        # More leakage per computation -> optimum moves up.
        short = find_vmin(inverter_sub, n_stages=10)
        long = find_vmin(inverter_sub, n_stages=100)
        assert long.vmin > short.vmin

    def test_rejects_bad_range(self, inverter_sub):
        with pytest.raises(ParameterError):
            find_vmin(inverter_sub, vdd_lo=0.5, vdd_hi=0.2)

    def test_boundary_minimum_rejected(self, inverter_sub):
        with pytest.raises(ParameterError):
            find_vmin(inverter_sub, vdd_lo=0.4, vdd_hi=0.7)
