"""Failure-path coverage for both scaling flows, on both solvers.

Every ``OptimizationError`` branch the optimizers can take — leakage
budget unreachable from above or below, halo-cannot-rescue, and the
energy factor still falling at the end of ``LENGTH_RANGE`` — plus the
root-device reuse guarantee (no rebuild after the root solve).
"""

import pytest

from repro import perf
from repro.device.mosfet import Polarity
from repro.errors import OptimizationError
from repro.scaling import subvth as subvth_mod
from repro.scaling import supervth as supervth_mod
from repro.scaling.roadmap import NodeSpec, roadmap_nodes
from repro.scaling.subvth import SubVthOptimizer, optimize_doping_for_length
from repro.scaling.supervth import SuperVthOptimizer

SOLVERS = ("batch", "sequential")

#: A 90nm-like node whose leakage budget is absurdly loose: even the
#: minimum doping leaks less than the target, so the budget binds from
#: the wrong side.
LOOSE_NODE = NodeSpec("loose", 90.0, 65.0, 2.10, 1.2, 1.0, 0)
#: The same node with an unreachably tight budget.
TIGHT_NODE = NodeSpec("tight", 90.0, 65.0, 2.10, 1.2, 1e-30, 0)
#: Very short gate under thick oxide: the long-channel substrate solve
#: succeeds but no halo peak can plug the short-channel leak.
HALO_HOPELESS_NODE = NodeSpec("hopeless", 32.0, 8.0, 2.5, 0.9, 1e-12, 3)


class TestSuperVthFailures:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_budget_unreachable_from_above(self, solver):
        with pytest.raises(OptimizationError,
                           match="budget unreachable from above"):
            SuperVthOptimizer(LOOSE_NODE).solve_substrate(solver=solver)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_budget_unreachable_from_below(self, solver):
        with pytest.raises(OptimizationError,
                           match="cannot meet leakage budget"):
            SuperVthOptimizer(TIGHT_NODE).solve_substrate(solver=solver)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_halo_cannot_rescue(self, solver):
        opt = SuperVthOptimizer(HALO_HOPELESS_NODE)
        n_sub = opt.solve_substrate(solver=solver)
        with pytest.raises(OptimizationError,
                           match="halo cannot rescue"):
            opt.solve_halo(n_sub, solver=solver)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_optimize_propagates_halo_failure(self, solver):
        with pytest.raises(OptimizationError,
                           match="halo cannot rescue"):
            SuperVthOptimizer(HALO_HOPELESS_NODE).optimize(solver=solver)


class TestSubVthFailures:
    @pytest.mark.parametrize("solver", SOLVERS)
    @pytest.mark.parametrize("target", [1.0, 1e-30],
                             ids=["too-loose", "too-tight"])
    def test_no_doping_meets_target(self, solver, target):
        node = roadmap_nodes()[0]
        with pytest.raises(OptimizationError, match="no doping meets"):
            optimize_doping_for_length(node, node.l_poly_nm,
                                       ioff_target=target, solver=solver)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_energy_factor_still_falling_at_range_end(self, solver,
                                                      monkeypatch):
        # Truncate the length search so the energy factor is still
        # decreasing at the top of the grid: the optimiser must refuse
        # rather than silently return an edge design.
        monkeypatch.setattr(subvth_mod, "LENGTH_RANGE", (1.0, 1.08))
        opt = SubVthOptimizer(roadmap_nodes()[2], n_length_points=4)
        with pytest.raises(OptimizationError,
                           match="still flat/falling"):
            opt.optimize(solver=solver)


class TestRootDeviceReuse:
    """After a scalar root solve, the converged device is not rebuilt."""

    def _count_builds(self, module, monkeypatch):
        built = []
        orig = module.build_nfet

        def counting(*args, **kwargs):
            dev = orig(*args, **kwargs)
            built.append(dev)
            return dev

        monkeypatch.setattr(module, "build_nfet", counting)
        return built

    def test_subvth_substrate_solve(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE_CACHE", "0")
        built = self._count_builds(subvth_mod, monkeypatch)
        node = roadmap_nodes()[1]
        perf.reset()
        dev = subvth_mod._solve_substrate_for_ioff(
            node, 1.5 * node.l_poly_nm, 0.5, 1e-10, Polarity.NFET,
            1.0, 0.30)
        evals = perf.get("optimizer.brentq_residual_evals")
        assert evals > 2
        # One construction per residual evaluation and none beyond: the
        # returned device is the root evaluation itself.
        assert len(built) == evals
        assert any(dev is b for b in built)

    def test_supervth_optimize(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE_CACHE", "0")
        built = self._count_builds(supervth_mod, monkeypatch)
        node = roadmap_nodes()[0]
        perf.reset()
        dev = SuperVthOptimizer(node).optimize(solver="sequential")
        evals = perf.get("optimizer.brentq_residual_evals")
        assert evals > 4
        assert len(built) == evals
        assert any(dev is b for b in built)
