"""Tests for the timing-margin / yield model."""

import pytest

from repro.errors import ParameterError
from repro.variability.yield_model import (
    gate_log_delay_sigma,
    margin_vs_supply,
    path_log_delay_sigma,
    timing_margin,
)


class TestLogSigmas:
    def test_gate_sigma_positive(self, inverter_sub):
        assert gate_log_delay_sigma(inverter_sub) > 0.0

    def test_path_sigma_averages_down(self, inverter_sub):
        s1 = path_log_delay_sigma(inverter_sub, 1)
        s100 = path_log_delay_sigma(inverter_sub, 100)
        assert s100 == pytest.approx(s1 / 10.0)

    def test_rejects_empty_path(self, inverter_sub):
        with pytest.raises(ParameterError):
            path_log_delay_sigma(inverter_sub, 0)


class TestTimingMargin:
    def test_margin_above_one(self, inverter_sub):
        report = timing_margin(inverter_sub)
        assert report.margin_multiplier > 1.0

    def test_more_paths_more_margin(self, inverter_sub):
        few = timing_margin(inverter_sub, n_paths=10)
        many = timing_margin(inverter_sub, n_paths=100000)
        assert many.margin_multiplier > few.margin_multiplier

    def test_tighter_yield_more_margin(self, inverter_sub):
        loose = timing_margin(inverter_sub, yield_target=0.9)
        tight = timing_margin(inverter_sub, yield_target=0.9999)
        assert tight.margin_multiplier > loose.margin_multiplier

    def test_longer_paths_less_margin(self, inverter_sub):
        short = timing_margin(inverter_sub, n_gates=5)
        long = timing_margin(inverter_sub, n_gates=100)
        assert long.margin_multiplier < short.margin_multiplier

    def test_substantial_margin_in_subthreshold(self, inverter_sub):
        # The paper's "large timing margins": tens of percent.
        report = timing_margin(inverter_sub, n_gates=30, n_paths=1000)
        assert report.margin_multiplier > 1.05

    def test_rejects_bad_yield(self, inverter_sub):
        with pytest.raises(ParameterError):
            timing_margin(inverter_sub, yield_target=1.5)

    def test_rejects_bad_paths(self, inverter_sub):
        with pytest.raises(ParameterError):
            timing_margin(inverter_sub, n_paths=0)


class TestStrategyComparison:
    def test_sub_vth_needs_less_margin_at_32nm(self, super_family,
                                               sub_family):
        sup = timing_margin(super_family.design("32nm").inverter(0.25))
        sub = timing_margin(sub_family.design("32nm").inverter(0.25))
        assert sub.margin_multiplier < sup.margin_multiplier

    def test_margin_supply_insensitive_first_order(self, inverter_sub):
        values = margin_vs_supply(inverter_sub, [0.2, 0.25, 0.3])
        assert max(values) / min(values) < 1.01
