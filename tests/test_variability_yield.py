"""Tests for the timing-margin / yield model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.variability import estimate_failure_probability
from repro.variability.tails import failure_indicator
from repro.variability.yield_model import (
    gate_log_delay_sigma,
    margin_vs_supply,
    path_log_delay_sigma,
    timing_margin,
)


class TestLogSigmas:
    def test_gate_sigma_positive(self, inverter_sub):
        assert gate_log_delay_sigma(inverter_sub) > 0.0

    def test_path_sigma_averages_down(self, inverter_sub):
        s1 = path_log_delay_sigma(inverter_sub, 1)
        s100 = path_log_delay_sigma(inverter_sub, 100)
        assert s100 == pytest.approx(s1 / 10.0)

    def test_rejects_empty_path(self, inverter_sub):
        with pytest.raises(ParameterError):
            path_log_delay_sigma(inverter_sub, 0)


class TestTimingMargin:
    def test_margin_above_one(self, inverter_sub):
        report = timing_margin(inverter_sub)
        assert report.margin_multiplier > 1.0

    def test_more_paths_more_margin(self, inverter_sub):
        few = timing_margin(inverter_sub, n_paths=10)
        many = timing_margin(inverter_sub, n_paths=100000)
        assert many.margin_multiplier > few.margin_multiplier

    def test_tighter_yield_more_margin(self, inverter_sub):
        loose = timing_margin(inverter_sub, yield_target=0.9)
        tight = timing_margin(inverter_sub, yield_target=0.9999)
        assert tight.margin_multiplier > loose.margin_multiplier

    def test_longer_paths_less_margin(self, inverter_sub):
        short = timing_margin(inverter_sub, n_gates=5)
        long = timing_margin(inverter_sub, n_gates=100)
        assert long.margin_multiplier < short.margin_multiplier

    def test_substantial_margin_in_subthreshold(self, inverter_sub):
        # The paper's "large timing margins": tens of percent.
        report = timing_margin(inverter_sub, n_gates=30, n_paths=1000)
        assert report.margin_multiplier > 1.05

    def test_rejects_bad_yield(self, inverter_sub):
        with pytest.raises(ParameterError):
            timing_margin(inverter_sub, yield_target=1.5)

    @pytest.mark.parametrize("target", [0.5, 1.0, 0.0, -0.1])
    def test_rejects_yield_outside_open_interval(self, inverter_sub,
                                                 target):
        # (0.5, 1.0) is open at both ends: 0.5 would put the margin
        # below nominal, 1.0 is unattainable with Gaussian tails.
        with pytest.raises(ParameterError):
            timing_margin(inverter_sub, yield_target=target)

    def test_rejects_bad_paths(self, inverter_sub):
        with pytest.raises(ParameterError):
            timing_margin(inverter_sub, n_paths=0)

    def test_rejects_bad_gates(self, inverter_sub):
        with pytest.raises(ParameterError):
            timing_margin(inverter_sub, n_gates=0)


class TestTimingMarginProperties:
    """Property-based checks: the margin is monotone where the model
    says it must be, for *any* valid operating point — not just the
    handful of example points above."""

    @settings(max_examples=30, deadline=None)
    @given(n_paths=st.integers(min_value=1, max_value=10**6),
           factor=st.integers(min_value=2, max_value=1000))
    def test_margin_monotone_in_n_paths(self, inverter_sub, n_paths,
                                        factor):
        few = timing_margin(inverter_sub, n_paths=n_paths)
        many = timing_margin(inverter_sub, n_paths=n_paths * factor)
        assert many.margin_multiplier >= few.margin_multiplier

    @settings(max_examples=30, deadline=None)
    @given(lo=st.floats(min_value=0.501, max_value=0.998),
           step=st.floats(min_value=1e-3, max_value=0.4))
    def test_margin_monotone_in_yield_target(self, inverter_sub, lo,
                                             step):
        hi = min(lo + step, 0.9995)
        loose = timing_margin(inverter_sub, yield_target=lo)
        tight = timing_margin(inverter_sub, yield_target=hi)
        assert tight.margin_multiplier >= loose.margin_multiplier

    @settings(max_examples=20, deadline=None)
    @given(n_gates=st.integers(min_value=1, max_value=500),
           n_paths=st.integers(min_value=1, max_value=10**6),
           target=st.floats(min_value=0.501, max_value=0.9999))
    def test_margin_never_below_one(self, inverter_sub, n_gates,
                                    n_paths, target):
        report = timing_margin(inverter_sub, n_gates=n_gates,
                               n_paths=n_paths, yield_target=target)
        assert report.margin_multiplier >= 1.0
        assert report.sigma_ln_path <= report.sigma_ln_gate


class TestEstimatorAgreement:
    def test_qmc_matches_mc_at_brute_verifiable_tail(self, sub_family):
        # p ~ 2.5e-4 — inside the 1e-3..1e-4 window where both plain
        # estimators resolve the tail and their 95 % CIs must overlap.
        inv = sub_family.design("32nm").inverter(0.25)
        indicator = failure_indicator(inv, mode="delay", slowdown=1.3)
        qmc = estimate_failure_probability(indicator, method="qmc",
                                           n_trials=1 << 17, seed=11)
        mc = estimate_failure_probability(indicator, method="mc",
                                          n_trials=1 << 17, seed=11)
        assert 1e-4 < qmc.p_fail < 1e-3
        assert 1e-4 < mc.p_fail < 1e-3
        assert qmc.agrees_with(mc)


class TestStrategyComparison:
    def test_sub_vth_needs_less_margin_at_32nm(self, super_family,
                                               sub_family):
        sup = timing_margin(super_family.design("32nm").inverter(0.25))
        sub = timing_margin(sub_family.design("32nm").inverter(0.25))
        assert sub.margin_multiplier < sup.margin_multiplier

    def test_margin_supply_insensitive_first_order(self, inverter_sub):
        values = margin_vs_supply(inverter_sub, [0.2, 0.25, 0.3])
        assert max(values) / min(values) < 1.01
