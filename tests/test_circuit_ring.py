"""Tests for the ring-oscillator extension."""

import pytest

from repro.circuit import RingOscillator
from repro.errors import ParameterError


class TestRingOscillator:
    def test_frequency_formula(self, inverter_sub):
        ro = RingOscillator(inverter_sub, n_stages=31)
        expected = 1.0 / (2.0 * 31 * ro.stage_delay())
        assert ro.frequency_hz() == pytest.approx(expected)

    def test_subthreshold_ro_khz_mhz_class(self, inverter_sub):
        # The paper's intro: sub-Vth circuits run in the kHz/low-MHz range.
        freq = RingOscillator(inverter_sub, n_stages=31).frequency_hz()
        assert 1e3 < freq < 5e7

    def test_nominal_much_faster(self, inverter_sub, inverter_nominal):
        f_sub = RingOscillator(inverter_sub).frequency_hz()
        f_nom = RingOscillator(inverter_nominal).frequency_hz()
        assert f_nom > 50.0 * f_sub

    def test_more_stages_slower(self, inverter_sub):
        f31 = RingOscillator(inverter_sub, n_stages=31).frequency_hz()
        f101 = RingOscillator(inverter_sub, n_stages=101).frequency_hz()
        assert f101 < f31

    def test_power_positive(self, inverter_sub):
        assert RingOscillator(inverter_sub).power_w() > 0.0

    def test_rejects_even_stage_count(self, inverter_sub):
        with pytest.raises(ParameterError):
            RingOscillator(inverter_sub, n_stages=30)

    def test_rejects_single_stage(self, inverter_sub):
        with pytest.raises(ParameterError):
            RingOscillator(inverter_sub, n_stages=1)

    def test_rejects_bad_activity(self, inverter_sub):
        with pytest.raises(ParameterError):
            RingOscillator(inverter_sub).power_w(activity=0.0)
