"""``solver=`` parity for the flow-level entry points (lint rule RPR004).

PRs 1-4 proved the batched *kernels* against their scalar oracles;
this suite closes the contract for the remaining public callables that
expose a ``solver=`` switch: the SRAM butterfly SNMs, the chain
minimum-energy point, the RDF delay distribution, the per-length and
per-flavour doping solves, the two super-V_th root solves, and the
calibration-perturbed headline rebuild.  ``repro lint`` statically
requires every such callable to appear here (or in a sibling
``test_*equivalence*`` suite).
"""

import numpy as np
import pytest

from repro.circuit.chain import InverterChain
from repro.circuit.inverter import Inverter
from repro.circuit.sram import SramCell, hold_snm, read_snm
from repro.device.mosfet import Polarity
from repro.scaling.multivth import derive_flavours
from repro.scaling.roadmap import node_by_name
from repro.scaling.sensitivity import headline_under_calibration
from repro.scaling.subvth import SubVthOptimizer
from repro.scaling.supervth import SuperVthOptimizer, build_super_vth_design
from repro.variability.montecarlo import delay_distribution

RTOL = 1e-9


def _assert_devices_match(batch_dev, seq_dev):
    assert batch_dev.geometry.l_poly_nm == pytest.approx(
        seq_dev.geometry.l_poly_nm, rel=RTOL)
    assert batch_dev.profile.n_sub_cm3 == pytest.approx(
        seq_dev.profile.n_sub_cm3, rel=RTOL)
    assert batch_dev.profile.n_p_halo_cm3 == pytest.approx(
        seq_dev.profile.n_p_halo_cm3, rel=RTOL, abs=0.0)
    assert batch_dev.ss_v_per_dec == pytest.approx(
        seq_dev.ss_v_per_dec, rel=RTOL)


class TestCircuitFlowParity:
    def test_hold_snm(self, nfet90, pfet90):
        cell = SramCell(pulldown=nfet90.with_width_um(2.0),
                        pullup=pfet90.with_width_um(1.0),
                        access=nfet90.with_width_um(1.0),
                        vdd=0.30)
        batch = hold_snm(cell, n_points=121, solver="batch")
        seq = hold_snm(cell, n_points=121, solver="sequential")
        assert batch == pytest.approx(seq, rel=1e-6, abs=1e-9)

    def test_read_snm(self, nfet90, pfet90):
        cell = SramCell(pulldown=nfet90.with_width_um(2.0),
                        pullup=pfet90.with_width_um(1.0),
                        access=nfet90.with_width_um(1.0),
                        vdd=0.30)
        batch = read_snm(cell, n_points=121, solver="batch")
        seq = read_snm(cell, n_points=121, solver="sequential")
        assert batch == pytest.approx(seq, rel=1e-6, abs=1e-9)

    def test_minimum_energy_point(self, nfet90, pfet90):
        chain = InverterChain(Inverter(nfet=nfet90, pfet=pfet90, vdd=0.3))
        batch = chain.minimum_energy_point(solver="batch")
        seq = chain.minimum_energy_point(solver="sequential")
        assert batch.vmin == pytest.approx(seq.vmin, rel=RTOL)
        assert batch.energy.total_j == pytest.approx(
            seq.energy.total_j, rel=RTOL)

    def test_delay_distribution(self, inverter_sub):
        batch = delay_distribution(inverter_sub, n_trials=64, seed=11,
                                   solver="batch")
        seq = delay_distribution(inverter_sub, n_trials=64, seed=11,
                                 solver="sequential")
        assert np.allclose(batch.samples, seq.samples, rtol=1e-12)
        assert batch.sigma_over_mean == pytest.approx(
            seq.sigma_over_mean, rel=1e-9)


class TestScalingFlowParity:
    def test_solve_substrate_and_halo(self):
        node = node_by_name("45nm")
        opt = SuperVthOptimizer(node, Polarity.NFET, width_um=1.0)
        n_sub_b = opt.solve_substrate(solver="batch")
        n_sub_s = opt.solve_substrate(solver="sequential")
        assert n_sub_b == pytest.approx(n_sub_s, rel=RTOL)
        halo_b = opt.solve_halo(n_sub_b, solver="batch")
        halo_s = opt.solve_halo(n_sub_b, solver="sequential")
        assert halo_b == pytest.approx(halo_s, rel=RTOL)

    def test_build_super_vth_design(self):
        node = node_by_name("65nm")
        des_b = build_super_vth_design(node, solver="batch")
        des_s = build_super_vth_design(node, solver="sequential")
        _assert_devices_match(des_b.nfet, des_s.nfet)
        _assert_devices_match(des_b.pfet, des_s.pfet)

    def test_design_for_length(self):
        node = node_by_name("45nm")
        opt = SubVthOptimizer(node)
        l_poly = 1.6 * node.l_poly_nm
        des_b = opt.design_for_length(l_poly, solver="batch")
        des_s = opt.design_for_length(l_poly, solver="sequential")
        _assert_devices_match(des_b.nfet, des_s.nfet)
        _assert_devices_match(des_b.pfet, des_s.pfet)

    def test_derive_flavours(self):
        node = node_by_name("45nm")
        menu_b = derive_flavours(node, 47.0, solver="batch")
        menu_s = derive_flavours(node, 47.0, solver="sequential")
        assert menu_b.keys() == menu_s.keys()
        for name in menu_b:
            _assert_devices_match(menu_b[name].design.nfet,
                                  menu_s[name].design.nfet)
            _assert_devices_match(menu_b[name].design.pfet,
                                  menu_s[name].design.pfet)
            assert menu_b[name].vth_mv() == pytest.approx(
                menu_s[name].vth_mv(), rel=1e-6)

    def test_headline_under_calibration(self):
        batch = headline_under_calibration(overlap_fraction=0.32,
                                           solver="batch")
        seq = headline_under_calibration(overlap_fraction=0.32,
                                         solver="sequential")
        assert batch.snm_advantage == pytest.approx(
            seq.snm_advantage, rel=1e-6, abs=1e-9)
        assert batch.energy_advantage == pytest.approx(
            seq.energy_advantage, rel=1e-6, abs=1e-9)
        assert batch.ss_degradation == pytest.approx(
            seq.ss_degradation, rel=1e-6, abs=1e-9)
