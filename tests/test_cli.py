"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "table2" in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Generalized scaling" in out
        assert "[OK ]" in out

    def test_run_fast_figure(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "S_S" in out

    def test_run_unknown_exits_2_with_clean_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment 'fig99'" in captured.err
        assert "table2" in captured.err          # known ids are listed
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_run_rejects_bad_jobs(self, capsys):
        assert main(["run", "table1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_run_multiple_ids(self, capsys):
        assert main(["run", "table1", "eq3"]) == 0
        out = capsys.readouterr().out
        assert out.count("-- completed in") == 2

    def test_run_parallel_jobs(self, capsys):
        # Two experiments over two worker processes; output order and
        # pass/fail must match the sequential run.
        assert main(["run", "table1", "eq3", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.index("Generalized scaling") < out.index("Eq. 3")
        assert "[OK ]" in out

    def test_run_profile_prints_counters(self, capsys):
        assert main(["run", "fig2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "perf counters:" in out
        assert "cache.device" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_with_plot(self, capsys):
        assert main(["run", "fig2", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "S_S (super-vth)" in out
        assert "+" in out                    # chart frame present

    def test_cards_command(self, capsys):
        assert main(["cards", "sub-vth"]) == 0
        out = capsys.readouterr().out
        assert "family cards: sub-vth" in out
        assert "32nm" in out

    def test_cards_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["cards", "quantum-vth"])

    def test_save_family_round_trip(self, tmp_path, capsys):
        path = tmp_path / "family.json"
        assert main(["save-family", "super-vth", str(path)]) == 0
        from repro.io import family_from_dict, load_json
        family = family_from_dict(load_json(path))
        assert family.node_names() == ("90nm", "65nm", "45nm", "32nm")
