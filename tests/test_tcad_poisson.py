"""Tests for the nonlinear 1-D Poisson solver."""

import numpy as np
import pytest

from repro.constants import nm_to_cm
from repro.device.electrostatics import depletion_width, flatband_voltage
from repro.errors import ConvergenceError, ParameterError
from repro.materials.oxide import sio2
from repro.materials.silicon import fermi_potential
from repro.tcad.grid import Mesh1D
from repro.tcad.poisson1d import solve_mos_poisson

N_SUB = 1.5e18
STACK = sio2(nm_to_cm(2.1))


@pytest.fixture(scope="module")
def mesh():
    return Mesh1D.geometric(8e-6, n_nodes=181)


@pytest.fixture(scope="module")
def doping(mesh):
    return np.full(mesh.n_nodes, N_SUB)


@pytest.fixture(scope="module")
def vfb():
    return flatband_voltage(N_SUB)


class TestFlatBandAndAccumulation:
    def test_flat_band_gives_zero_bending(self, mesh, doping, vfb):
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb, vfb=vfb)
        assert abs(sol.surface_potential_v) < 2e-3

    def test_accumulation_negative_bending(self, mesh, doping, vfb):
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb - 0.5, vfb=vfb)
        assert sol.surface_potential_v < 0.0


class TestDepletionInversion:
    def test_surface_potential_monotone_in_vg(self, mesh, doping, vfb):
        psis = []
        warm = None
        for vg in np.linspace(vfb, vfb + 2.0, 9):
            sol = solve_mos_poisson(mesh, doping, STACK, vg=float(vg),
                                    vfb=vfb, initial_psi=warm)
            psis.append(sol.surface_potential_v)
            warm = sol.psi_v
        assert all(b > a for a, b in zip(psis, psis[1:]))

    def test_surface_potential_pins_near_2phif(self, mesh, doping, vfb):
        # Strong inversion pins psi_s a few vT above 2 phi_F.
        phi_f = fermi_potential(N_SUB)
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb + 2.5, vfb=vfb)
        assert 2.0 * phi_f < sol.surface_potential_v < 2.0 * phi_f + 0.2

    def test_depletion_approximation_matches(self, mesh, doping, vfb):
        # In mid-depletion the numeric band bending profile should
        # resemble the parabolic depletion approximation.
        phi_f = fermi_potential(N_SUB)
        target = 1.2 * phi_f
        # Find the vg giving psi_s ~ target by bisection on the solver.
        lo, hi = vfb, vfb + 2.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            sol = solve_mos_poisson(mesh, doping, STACK, vg=mid, vfb=vfb)
            if sol.surface_potential_v < target:
                lo = mid
            else:
                hi = mid
        w_expected = depletion_width(N_SUB, surface_potential_v=target)
        psi = sol.psi_v
        # Numeric width: depth where bending falls to 5% of surface.
        idx = int(np.argmax(psi < 0.05 * sol.surface_potential_v))
        w_numeric = mesh.nodes_cm[idx]
        assert w_numeric == pytest.approx(w_expected, rel=0.35)

    def test_charge_neutral_deep_bulk(self, mesh, doping, vfb):
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb + 1.5, vfb=vfb)
        assert abs(sol.psi_v[-1]) < 1e-9


class TestChannelPotential:
    def test_quasi_fermi_shift_reduces_electrons(self, mesh, doping, vfb):
        vg = vfb + 2.0
        source = solve_mos_poisson(mesh, doping, STACK, vg=vg, vfb=vfb)
        drain = solve_mos_poisson(mesh, doping, STACK, vg=vg, vfb=vfb,
                                  channel_potential_v=0.3)
        assert drain.electron_cm3[0] < source.electron_cm3[0]

    def test_shift_recorded(self, mesh, doping, vfb):
        sol = solve_mos_poisson(mesh, doping, STACK, vg=vfb + 1.0, vfb=vfb,
                                channel_potential_v=0.25)
        assert sol.channel_potential_v == 0.25


class TestValidation:
    def test_rejects_mismatched_doping(self, mesh, vfb):
        with pytest.raises(ParameterError):
            solve_mos_poisson(mesh, np.full(10, N_SUB), STACK, 0.5, vfb)

    def test_rejects_nonpositive_doping(self, mesh, vfb):
        bad = np.full(mesh.n_nodes, N_SUB)
        bad[3] = -1.0
        with pytest.raises(ParameterError):
            solve_mos_poisson(mesh, bad, STACK, 0.5, vfb)

    def test_rejects_mismatched_warm_start(self, mesh, doping, vfb):
        with pytest.raises(ParameterError):
            solve_mos_poisson(mesh, doping, STACK, 0.5, vfb,
                              initial_psi=np.zeros(5))

    def test_convergence_error_carries_diagnostics(self, mesh, doping, vfb):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_mos_poisson(mesh, doping, STACK, vfb + 2.0, vfb,
                              max_iter=2)
        err = excinfo.value
        assert err.iterations == 2
        assert err.residual is not None and err.residual > 0.0
