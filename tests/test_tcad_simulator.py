"""Tests for the DeviceSimulator (MEDICI substitute)."""

import numpy as np
import pytest

from repro.device import nfet
from repro.errors import ParameterError
from repro.tcad.simulator import DeviceSimulator


@pytest.fixture(scope="module")
def dev():
    return nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
                n_p_halo_cm3=1.5e18)


@pytest.fixture(scope="module")
def sim(dev):
    return DeviceSimulator(dev)


class TestSweeps:
    def test_surface_potential_monotone(self, sim, dev):
        vgs = np.linspace(0.0, 1.2, 13)
        psi = sim.surface_potential_sweep(vgs)
        assert np.all(np.diff(psi) > 0.0)

    def test_inversion_charge_monotone(self, sim):
        vgs = np.linspace(0.2, 1.2, 11)
        q = sim.inversion_charge_sweep(vgs)
        assert np.all(np.diff(q) > 0.0)

    def test_drain_charge_below_source_charge(self, sim):
        vgs = np.linspace(0.3, 1.0, 8)
        q_s = sim.inversion_charge_sweep(vgs, 0.0)
        q_d = sim.inversion_charge_sweep(vgs, 0.5)
        assert np.all(q_d < q_s)


class TestIdVg:
    def test_curve_monotone(self, sim, dev):
        vgs = np.linspace(-0.1, 1.2, 27)
        curve = sim.id_vg(1.2, vgs)
        assert np.all(np.diff(np.log(curve.ids)) > 0.0)

    def test_dibl_direction(self, sim):
        vgs = np.linspace(0.0, 1.0, 21)
        lin = sim.id_vg(0.05, vgs)
        sat = sim.id_vg(1.0, vgs)
        # At fixed sub-threshold vgs, more drain bias -> more current.
        assert sat.current_at(0.2) > lin.current_at(0.2)

    def test_rejects_negative_vds(self, sim):
        with pytest.raises(ParameterError):
            sim.id_vg(-0.5, np.linspace(0, 1, 11))


class TestExtractedMetrics:
    def test_numeric_ss_close_to_analytic(self, sim, dev):
        numeric = sim.numeric_ss()
        assert numeric == pytest.approx(dev.ss_v_per_dec, rel=0.10)

    def test_numeric_vth_close_to_compact(self, sim, dev):
        numeric = sim.numeric_vth(1.2)
        compact = dev.vth_sat_cc(1.2)
        assert numeric == pytest.approx(compact, abs=0.06)

    def test_numeric_ioff_within_order_of_compact(self, sim, dev):
        vgs = np.linspace(-0.1, 1.2, 27)
        curve = sim.id_vg(1.2, vgs)
        numeric = curve.current_at(0.0)
        compact = dev.i_off(1.2)
        assert 0.1 < numeric / compact < 10.0


class TestConfiguration:
    def test_rejects_tiny_mesh(self, dev):
        with pytest.raises(ParameterError):
            DeviceSimulator(dev, n_nodes=5)

    def test_rejects_unknown_solver(self, dev):
        with pytest.raises(ParameterError):
            DeviceSimulator(dev, solver="quantum")

    def test_finer_mesh_consistent(self, dev):
        coarse = DeviceSimulator(dev, n_nodes=81).numeric_ss()
        fine = DeviceSimulator(dev, n_nodes=241).numeric_ss()
        assert coarse == pytest.approx(fine, rel=0.03)
