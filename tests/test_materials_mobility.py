"""Tests for the mobility models."""

import pytest

from repro.errors import ParameterError
from repro.materials.mobility import (
    MobilityModel,
    effective_mobility,
    masetti_mobility,
    saturation_velocity,
    vertical_field_factor,
)


class TestMasetti:
    def test_lightly_doped_near_lattice_value(self):
        assert masetti_mobility(1e14) == pytest.approx(1417.0, rel=0.02)

    def test_heavily_doped_small(self):
        assert masetti_mobility(1e19, "electron") < 150.0

    def test_monotone_decreasing(self):
        dopings = [1e15, 1e16, 1e17, 1e18, 1e19, 1e20]
        values = [masetti_mobility(n) for n in dopings]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_holes_slower_than_electrons(self):
        for n in (1e16, 1e18):
            assert masetti_mobility(n, "hole") < masetti_mobility(n, "electron")

    def test_floor_applied(self):
        assert masetti_mobility(5e20) >= 10.0

    def test_unknown_carrier(self):
        with pytest.raises(ParameterError):
            masetti_mobility(1e18, "muon")

    def test_rejects_nonpositive_doping(self):
        with pytest.raises(ParameterError):
            masetti_mobility(0.0)


class TestVerticalField:
    def test_zero_field_is_unity(self):
        assert vertical_field_factor(0.0) == pytest.approx(1.0)

    def test_degrades_with_field(self):
        assert vertical_field_factor(1e6) < vertical_field_factor(1e5)

    def test_bounded_by_one(self):
        for field in (1e4, 1e5, 1e6, 5e6):
            assert 0.0 < vertical_field_factor(field) <= 1.0

    def test_rejects_negative_field(self):
        with pytest.raises(ParameterError):
            vertical_field_factor(-1.0)


class TestMobilityModel:
    def test_effective_below_low_field(self):
        model = MobilityModel("electron")
        assert model.effective(1e18, 5e5) < model.low_field(1e18)

    def test_temperature_reduces_mobility(self):
        hot = MobilityModel("electron", temperature_k=400.0)
        cold = MobilityModel("electron", temperature_k=300.0)
        assert hot.low_field(1e17) < cold.low_field(1e17)

    def test_vsat_electron_exceeds_hole(self):
        assert saturation_velocity("electron") > saturation_velocity("hole")

    def test_invalid_carrier_rejected(self):
        with pytest.raises(ParameterError):
            MobilityModel("tachyon")

    def test_convenience_wrapper(self):
        assert effective_mobility(2e18) < effective_mobility(1e16)


class TestSaturationVelocity:
    def test_electron_value(self):
        assert saturation_velocity("electron") == pytest.approx(1e7)

    def test_unknown_carrier(self):
        with pytest.raises(ParameterError):
            saturation_velocity("neutrino")
