"""Tests for logical-effort path sizing."""

import pytest

from repro.circuit.logical_effort import (
    GATE_EFFORTS,
    best_stage_count,
    path_logical_effort,
    path_parasitic,
    size_path,
)
from repro.errors import ParameterError


class TestPathAlgebra:
    def test_inverter_effort_is_one(self):
        assert path_logical_effort(["inv", "inv"]) == pytest.approx(1.0)

    def test_nand_chain(self):
        assert path_logical_effort(["nand2", "nand2"]) == pytest.approx(
            (4.0 / 3.0) ** 2)

    def test_parasitic_sum(self):
        assert path_parasitic(["inv", "nand2"]) == pytest.approx(3.0)

    def test_unknown_gate(self):
        with pytest.raises(ParameterError):
            path_logical_effort(["xor7"])


class TestSizePath:
    def test_equalised_stage_effort(self, inverter_sub):
        timing = size_path(inverter_sub, ["inv", "nand2", "inv"], fanout=8.0)
        g_total = path_logical_effort(["inv", "nand2", "inv"])
        assert timing.stage_efforts == pytest.approx(
            (g_total * 8.0) ** (1.0 / 3.0))

    def test_sizes_grow_along_path(self, inverter_sub):
        timing = size_path(inverter_sub, ["inv"] * 4, fanout=16.0)
        sizes = timing.relative_sizes
        assert all(b > a for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] == pytest.approx(1.0)

    def test_normalized_delay_formula(self, inverter_sub):
        timing = size_path(inverter_sub, ["inv", "inv"], fanout=4.0)
        expected = 2.0 * 2.0 + 2.0   # N*f_hat + P with f_hat = sqrt(4)
        assert timing.normalized_delay == pytest.approx(expected)

    def test_absolute_delay_scales_with_technology(self, inverter_sub,
                                                   inverter_nominal):
        gates = ["inv", "nand2", "inv"]
        slow = size_path(inverter_sub, gates, fanout=8.0)
        fast = size_path(inverter_nominal, gates, fanout=8.0)
        # Same normalized delay, wildly different absolute delay.
        assert slow.normalized_delay == pytest.approx(fast.normalized_delay)
        assert slow.delay_s > 50.0 * fast.delay_s

    def test_more_load_slower(self, inverter_sub):
        t1 = size_path(inverter_sub, ["inv"] * 3, fanout=4.0)
        t2 = size_path(inverter_sub, ["inv"] * 3, fanout=32.0)
        assert t2.delay_s > t1.delay_s

    def test_rejects_empty_path(self, inverter_sub):
        with pytest.raises(ParameterError):
            size_path(inverter_sub, [], fanout=4.0)

    def test_rejects_bad_fanout(self, inverter_sub):
        with pytest.raises(ParameterError):
            size_path(inverter_sub, ["inv"], fanout=0.0)


class TestBestStageCount:
    def test_large_effort_wants_multiple_stages(self, inverter_sub):
        n, _delay = best_stage_count(inverter_sub, total_effort=256.0)
        assert n >= 3

    def test_small_effort_wants_one_stage(self, inverter_sub):
        n, _delay = best_stage_count(inverter_sub, total_effort=2.0)
        assert n <= 2

    def test_optimum_beats_neighbours(self, inverter_sub):
        n, delay = best_stage_count(inverter_sub, total_effort=64.0)
        for other in (n - 1, n + 1):
            if other < 1:
                continue
            timing = size_path(inverter_sub, ["inv"] * other, 64.0)
            assert timing.delay_s >= delay * 0.999

    def test_rejects_effort_below_one(self, inverter_sub):
        with pytest.raises(ParameterError):
            best_stage_count(inverter_sub, total_effort=0.5)
