"""Tests for the inverter VTC solver."""

import numpy as np
import pytest

from repro.circuit import Inverter
from repro.errors import ParameterError


class TestConstruction:
    def test_polarity_enforced(self, nfet90, pfet90):
        with pytest.raises(ParameterError):
            Inverter(nfet=pfet90, pfet=nfet90, vdd=0.25)

    def test_rejects_nonpositive_vdd(self, nfet90, pfet90):
        with pytest.raises(ParameterError):
            Inverter(nfet=nfet90, pfet=pfet90, vdd=0.0)

    def test_with_vdd(self, inverter_sub):
        assert inverter_sub.with_vdd(0.3).vdd == pytest.approx(0.3)


class TestVtc:
    def test_rails(self, inverter_sub):
        vdd = inverter_sub.vdd
        assert inverter_sub.vtc_point(0.0) > 0.95 * vdd
        assert inverter_sub.vtc_point(vdd) < 0.05 * vdd

    def test_monotone_decreasing(self, inverter_sub):
        vins, vouts = inverter_sub.vtc(n_points=61)
        assert np.all(np.diff(vouts) <= 1e-9)

    def test_output_in_rails(self, inverter_sub):
        vins, vouts = inverter_sub.vtc(n_points=41)
        assert np.all(vouts >= -1e-12)
        assert np.all(vouts <= inverter_sub.vdd + 1e-12)

    def test_nominal_vdd_sharp_transition(self, inverter_nominal):
        # At 1.2 V the transition is steep: gain magnitude >> 1.
        mid = inverter_nominal.switching_threshold()
        assert inverter_nominal.gain(mid) < -5.0

    def test_vin_out_of_range_rejected(self, inverter_sub):
        with pytest.raises(ParameterError):
            inverter_sub.vtc_point(-0.1)

    def test_balance_at_vtc_point(self, inverter_sub):
        vin = 0.12
        vout = inverter_sub.vtc_point(vin)
        balance = (inverter_sub.pulldown_current(vin, vout)
                   - inverter_sub.pullup_current(vin, vout))
        scale = inverter_sub.pulldown_current(vin, vout)
        assert abs(balance) < 1e-3 * max(scale, 1e-18)


class TestSwitchingThreshold:
    def test_interior(self, inverter_sub):
        vm = inverter_sub.switching_threshold()
        assert 0.0 < vm < inverter_sub.vdd

    def test_self_consistent(self, inverter_sub):
        vm = inverter_sub.switching_threshold()
        assert inverter_sub.vtc_point(vm) == pytest.approx(vm, abs=1e-6)


class TestLoadsAndLeakage:
    def test_input_capacitance_positive(self, inverter_sub):
        assert inverter_sub.input_capacitance() > 0.0

    def test_subthreshold_cap_below_nominal(self, inverter_sub,
                                            inverter_nominal):
        # Weak-inversion gate capacitance collapse.
        assert (inverter_sub.input_capacitance()
                < 0.8 * inverter_nominal.input_capacitance())

    def test_fo_load_monotone(self, inverter_sub):
        c1 = inverter_sub.load_capacitance(1)
        c2 = inverter_sub.load_capacitance(2)
        assert c2 > c1 > inverter_sub.load_capacitance(0)

    def test_rejects_negative_fanout(self, inverter_sub):
        with pytest.raises(ParameterError):
            inverter_sub.load_capacitance(-1)

    def test_leakage_between_device_leakages(self, inverter_sub):
        i_n = inverter_sub.nfet.i_off(inverter_sub.vdd)
        i_p = inverter_sub.pfet.i_off(inverter_sub.vdd)
        leak = inverter_sub.leakage_current()
        assert min(i_n, i_p) <= leak <= max(i_n, i_p)
