"""Batch-vs-sequential equivalence of the compiled batched MNA engine.

RPR004 coverage: every ``solver=`` switch introduced by the batched
nodal engine and its array workloads — ``solve_dc_batch``,
``solve_transient_batch``, ``bitline_leakage_vs_height``,
``loaded_read_snm``, ``read_snm_vs_height``, ``write_trip_voltage``,
``min_write_pulse``, ``gate_leakage`` and ``gate_delay`` — is pinned
here against the scalar :class:`~repro.circuit.mna.NodalSolver`
oracle at <= 1e-9 V (the engines share nothing past the netlist).
Circuits are kept tiny: the oracle is three decades slower per lane.
"""

import numpy as np
import pytest

from repro.circuit.gate_netlists import (gate_delay, gate_leakage,
                                         nand2_netlist, nor2_netlist)
from repro.circuit.mna_batch import solve_dc_batch, solve_transient_batch
from repro.circuit.netlist import Circuit
from repro.circuit.sram import SramCell
from repro.circuit.sram_array import (bitline_leakage_vs_height,
                                      loaded_read_snm, min_write_pulse,
                                      read_snm_vs_height, write_trip_voltage)
from repro.errors import ParameterError

VDD = 0.25
TOL_V = 1e-9


@pytest.fixture(scope="module")
def cell(nfet90, pfet90):
    return SramCell(pulldown=nfet90.with_width_um(2.0),
                    pullup=pfet90.with_width_um(1.0),
                    access=nfet90.with_width_um(1.0), vdd=VDD)


def _inverter(nfet90, pfet90) -> Circuit:
    c = Circuit()
    c.add_vsource("vdd", "vdd", VDD)
    c.add_vsource("vin", "in", 0.0)
    c.add_inverter("i1", "in", "out", "vdd", nfet90, pfet90)
    return c


def _max_dv(batch, seq) -> float:
    return max(float(np.max(np.abs(batch[node] - seq[node])))
               for node in seq.voltages)


class TestDcEquivalence:
    def test_inverter_sweep_with_corners(self, nfet90, pfet90):
        c = _inverter(nfet90, pfet90)
        vins = np.linspace(0.0, VDD, 5).reshape(5, 1)
        corners = np.array([-0.01, 0.01])
        kwargs = dict(stimulus={"vin": vins}, dvth_n_v=corners,
                      dvth_p_v=0.005)
        batch = solve_dc_batch(c, **kwargs)
        seq = solve_dc_batch(c, solver="sequential", **kwargs)
        assert batch.batch_shape == (5, 2)
        assert _max_dv(batch, seq) <= TOL_V

    def test_source_currents_match(self, nfet90, pfet90):
        c = _inverter(nfet90, pfet90)
        vins = np.linspace(0.0, VDD, 4)
        batch = solve_dc_batch(c, stimulus={"vin": vins})
        seq = solve_dc_batch(c, stimulus={"vin": vins},
                             solver="sequential")
        for name in ("vdd", "vin"):
            assert np.max(np.abs(batch.source_currents_a[name]
                                 - seq.source_currents_a[name])) <= 1e-15

    def test_bistable_seeds_pick_same_basins(self, nfet90, pfet90):
        c = Circuit()
        c.add_vsource("vdd", "vdd", VDD)
        c.add_inverter("i1", "q", "qb", "vdd", nfet90, pfet90)
        c.add_inverter("i2", "qb", "q", "vdd", nfet90, pfet90)
        seeds = {"q": np.array([0.0, VDD]), "qb": np.array([VDD, 0.0])}
        batch = solve_dc_batch(c, initial=seeds)
        seq = solve_dc_batch(c, initial=seeds, solver="sequential")
        assert batch["q"][0] < 0.05 * VDD < 0.95 * VDD < batch["q"][1]
        assert _max_dv(batch, seq) <= TOL_V


class TestTransientEquivalence:
    def test_inverter_fall_crossings(self, nfet90, pfet90):
        c = _inverter(nfet90, pfet90)
        c.add_capacitor("cl", "out", "0", 2e-15)
        corners = np.array([-0.01, 0.0, 0.01])

        def step(t: float) -> float:
            return VDD if t >= 1e-9 else 0.0

        kwargs = dict(stimulus={"vin": step}, dvth_n_v=corners)
        batch = solve_transient_batch(c, 4e-7, 2e-9, **kwargs)
        seq = solve_transient_batch(c, 4e-7, 2e-9, solver="sequential",
                                    **kwargs)
        t_b = batch.crossing_times("out", VDD / 2, rising=False)
        t_s = seq.crossing_times("out", VDD / 2, rising=False)
        assert np.all(np.isfinite(t_b))
        assert np.max(np.abs(t_b - t_s) / t_s) <= 1e-6
        assert np.max(np.abs(batch.voltages["out"][-1]
                             - seq.voltages["out"][-1])) <= TOL_V

    def test_at_interpolation_matches(self, nfet90, pfet90):
        c = Circuit()
        c.add_vsource("vs", "a", 1.0)
        c.add_resistor("r1", "a", "b", 1e6)
        c.add_capacitor("c1", "b", "0", 1e-12)
        kwargs = dict(initial={"b": 0.0}, use_initial_conditions=True)
        batch = solve_transient_batch(c, 3e-6, 2e-8, **kwargs)
        seq = solve_transient_batch(c, 3e-6, 2e-8, solver="sequential",
                                    **kwargs)
        for t_probe in (5e-7, 1e-6, 2.5e-6):
            assert batch.at("b", t_probe) == pytest.approx(
                float(seq.at("b", t_probe)), abs=TOL_V)


class TestColumnEquivalence:
    def test_bitline_leakage_vs_height(self, cell):
        corners = np.array([-0.01, 0.01])
        batch = bitline_leakage_vs_height(cell, (2, 3), dvth_n_v=corners)
        seq = bitline_leakage_vs_height(cell, (2, 3), dvth_n_v=corners,
                                        solver="sequential")
        assert np.max(np.abs(batch.v_bl - seq.v_bl)) <= TOL_V
        assert np.max(np.abs(batch.i_bl_a - seq.i_bl_a)
                      / seq.i_bl_a) <= 1e-6

    def test_loaded_read_snm(self, cell):
        batch = loaded_read_snm(cell, 2, n_points=9)
        seq = loaded_read_snm(cell, 2, n_points=9, solver="sequential")
        assert batch == pytest.approx(seq, abs=TOL_V)

    def test_read_snm_vs_height_is_batch_path(self, cell):
        heights, snm, pinned = read_snm_vs_height(cell, (2,), n_points=9)
        assert heights.tolist() == [2]
        assert snm[0] == pytest.approx(loaded_read_snm(cell, 2,
                                                       n_points=9),
                                       abs=1e-12)
        assert 0.0 < pinned < snm[0]

    def test_write_trip_voltage(self, cell):
        batch = write_trip_voltage(cell, 2, ramp_taus=20.0, n_steps=60)
        seq = write_trip_voltage(cell, 2, ramp_taus=20.0, n_steps=60,
                                 solver="sequential")
        assert np.isfinite(batch).all()
        assert np.max(np.abs(batch - seq)) <= 1e-6 * VDD

    def test_min_write_pulse(self, cell):
        batch = min_write_pulse(cell, 2, n_probes=3, n_steps=24)
        seq = min_write_pulse(cell, 2, n_probes=3, n_steps=24,
                              solver="sequential")
        assert np.isfinite(batch).all()
        # The searches bisect identical brackets, so agreeing solves
        # land on identical widths.
        assert batch == pytest.approx(seq, rel=1e-9)


class TestGateEquivalence:
    def test_gate_leakage_truth_table(self, nfet90, pfet90):
        for build in (nand2_netlist, nor2_netlist):
            gate = build(nfet90, pfet90, VDD)
            a = np.array([0.0, 0.0, VDD, VDD])
            b = np.array([0.0, VDD, 0.0, VDD])
            batch = gate_leakage(gate, {"a": a, "b": b})
            seq = gate_leakage(gate, {"a": a, "b": b},
                               solver="sequential")
            assert np.max(np.abs(batch - seq) / np.abs(seq)) <= 1e-6

    def test_gate_delay(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        batch = gate_delay(gate, "b", held={"a": VDD}, n_steps=48)
        seq = gate_delay(gate, "b", held={"a": VDD}, n_steps=48,
                         solver="sequential")
        assert np.isfinite(batch)
        assert batch == pytest.approx(float(seq), rel=1e-6)

    def test_rejects_unknown_solver(self, nfet90, pfet90):
        gate = nand2_netlist(nfet90, pfet90, VDD)
        with pytest.raises(ParameterError):
            gate_leakage(gate, solver="magic")
