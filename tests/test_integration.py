"""Cross-layer integration tests.

These tie the layers together the way the paper does: compact model vs
numerical TCAD, analytic vs transient circuit metrics, and strategy
optimisers vs circuit-level outcomes.
"""

import numpy as np
import pytest

from repro.circuit import Inverter, fo1_delay, noise_margins
from repro.circuit.energy import find_vmin
from repro.device import nfet, pfet
from repro.scaling.metrics import energy_factor, vmin_estimate
from repro.tcad.simulator import DeviceSimulator


class TestCompactVsTcad:
    def test_ss_agreement_across_family(self, super_family):
        for design in super_family.designs:
            sim = DeviceSimulator(design.nfet)
            assert sim.numeric_ss() == pytest.approx(
                design.nfet.ss_v_per_dec, rel=0.10)

    def test_vth_agreement_90nm(self, super_family):
        design = super_family.designs[0]
        sim = DeviceSimulator(design.nfet)
        vdd = design.node.vdd_nominal
        assert sim.numeric_vth(vdd) == pytest.approx(
            design.nfet.vth_sat_cc(vdd), abs=0.06)


class TestAnalyticVsSimulated:
    def test_delay_consistency_subthreshold(self, inverter_sub):
        result = fo1_delay(inverter_sub, transient=True)
        assert result.transient_s == pytest.approx(result.analytic_s,
                                                   rel=0.5)

    def test_vmin_tracks_ss_model(self, super_family):
        # The refs-[17][18] proportionality V_min ~ K * S_S should hold
        # across the family with a consistent K.
        ks = []
        for design in super_family.designs:
            mep = find_vmin(design.inverter(0.3))
            ks.append(mep.vmin / design.nfet.ss_v_per_dec)
        assert max(ks) / min(ks) < 1.15

    def test_energy_factor_predicts_chain_energy(self, super_family):
        # Eq. 8: C_L S_S^2 should rank the nodes the same way the full
        # chain simulation does.
        from repro.circuit.chain import InverterChain
        energies = []
        factors = []
        for design in super_family.designs:
            mep = InverterChain(design.inverter(0.3)).minimum_energy_point()
            energies.append(mep.energy.total_j)
            c_load = design.inverter(mep.vmin).load_capacitance(1)
            factors.append(energy_factor(c_load, design.nfet.ss_v_per_dec))
        assert np.argsort(energies).tolist() == np.argsort(factors).tolist()


class TestStrategyOutcomes:
    def test_snm_ordering_at_32nm(self, super_family, sub_family):
        snm_sup = noise_margins(
            super_family.design("32nm").inverter(0.25)).snm
        snm_sub = noise_margins(
            sub_family.design("32nm").inverter(0.25)).snm
        assert snm_sub > snm_sup

    def test_both_strategies_share_90nm_heritage(self, super_family,
                                                 sub_family):
        # At 90nm the strategies have barely diverged.
        s_sup = super_family.design("90nm").nfet.ss_mv_per_dec
        s_sub = sub_family.design("90nm").nfet.ss_mv_per_dec
        assert s_sub == pytest.approx(s_sup, abs=3.0)

    def test_sub_vth_stronger_at_use_voltage(self, super_family, sub_family):
        # The sub-V_th strategy specs leakage at the operating bias, so
        # its 32nm device has far more 250 mV drive than the super-V_th
        # one, whose V_th was pushed up by slope degradation.
        i_sup = super_family.design("32nm").nfet.i_on(0.25)
        i_sub = sub_family.design("32nm").nfet.i_on(0.25)
        assert i_sub > 1.5 * i_sup

    def test_sub_vth_leakage_pinned_at_use_voltage(self, sub_family):
        for design in sub_family.designs:
            assert design.nfet.i_off_per_um(0.30) == pytest.approx(
                100e-12, rel=0.01)


class TestSymmetricInverterDesign:
    def test_beta_matched_switching_threshold(self):
        # A 2x PFET roughly centres the inverter trip point.
        n = nfet(65, 2.1, 1.2e18, 1.5e18)
        p = pfet(65, 2.1, 1.2e18, 1.5e18, width_um=2.0)
        inv = Inverter(n, p, vdd=0.3)
        vm = inv.switching_threshold()
        assert 0.25 < vm / inv.vdd < 0.75
