"""Tests for the InverterChain testbench."""

import pytest

from repro.circuit import InverterChain
from repro.errors import ParameterError


@pytest.fixture()
def chain(inverter_sub):
    return InverterChain(stage=inverter_sub, n_stages=30, activity=0.1)


class TestChain:
    def test_critical_path_scales_with_stages(self, inverter_sub):
        c10 = InverterChain(inverter_sub, n_stages=10)
        c30 = InverterChain(inverter_sub, n_stages=30)
        assert c30.critical_path() == pytest.approx(
            3.0 * c10.critical_path())

    def test_stage_delay_positive(self, chain):
        assert chain.stage_delay() > 0.0

    def test_energy_matches_free_function(self, chain):
        from repro.circuit.energy import chain_energy_per_cycle
        direct = chain_energy_per_cycle(chain.stage, 30, 0.1)
        assert chain.energy_per_cycle().total_j == pytest.approx(
            direct.total_j)

    def test_minimum_energy_point(self, chain):
        mep = chain.minimum_energy_point()
        assert 0.08 < mep.vmin < 0.7
        assert mep.energy.total_j > 0.0

    def test_at_vdd(self, chain):
        rebias = chain.at_vdd(0.4)
        assert rebias.vdd == pytest.approx(0.4)
        assert rebias.n_stages == chain.n_stages

    def test_rejects_zero_stages(self, inverter_sub):
        with pytest.raises(ParameterError):
            InverterChain(inverter_sub, n_stages=0)

    def test_rejects_bad_activity(self, inverter_sub):
        with pytest.raises(ParameterError):
            InverterChain(inverter_sub, activity=-0.1)

    def test_vdd_property(self, chain, inverter_sub):
        assert chain.vdd == inverter_sub.vdd
