"""Tests for the threshold-voltage model (roll-up + roll-off)."""

import numpy as np
import pytest

from repro.constants import nm_to_cm
from repro.device.doping import DopingProfile, HaloImplant
from repro.device.geometry import DeviceGeometry
from repro.device.threshold import (
    ThresholdModel,
    characteristic_length,
    delta_vth_sce,
    vth_long_channel,
)
from repro.errors import ParameterError
from repro.materials.oxide import sio2

STACK = sio2(nm_to_cm(2.1))


@pytest.fixture()
def model():
    geometry = DeviceGeometry.from_nm(65.0)
    halo = HaloImplant.for_geometry(geometry, 2e18)
    profile = DopingProfile(n_sub_cm3=1.2e18, halo=halo)
    return ThresholdModel(geometry=geometry, profile=profile, stack=STACK)


class TestLongChannel:
    def test_typical_value(self):
        vth = vth_long_channel(2e18, STACK)
        assert 0.3 < vth < 0.7

    def test_increases_with_doping(self):
        assert vth_long_channel(4e18, STACK) > vth_long_channel(1e18, STACK)

    def test_increases_with_tox(self):
        thick = sio2(nm_to_cm(3.0))
        assert vth_long_channel(2e18, thick) > vth_long_channel(2e18, STACK)


class TestCharacteristicLength:
    def test_positive_and_small(self):
        lt = characteristic_length(STACK, 2.4e-6)
        assert 0.0 < lt < 2.4e-6

    def test_grows_with_wdep(self):
        assert (characteristic_length(STACK, 3e-6)
                > characteristic_length(STACK, 1e-6))

    def test_rejects_nonpositive_wdep(self):
        with pytest.raises(ParameterError):
            characteristic_length(STACK, 0.0)


class TestSceShift:
    def test_positive(self):
        dv = delta_vth_sce(nm_to_cm(45.0), STACK, 2.2e-6, 2e18, vds=1.2)
        assert dv > 0.0

    def test_grows_with_vds_dibl(self):
        lo = delta_vth_sce(nm_to_cm(45.0), STACK, 2.2e-6, 2e18, vds=0.05)
        hi = delta_vth_sce(nm_to_cm(45.0), STACK, 2.2e-6, 2e18, vds=1.2)
        assert hi > lo

    def test_decays_with_length(self):
        lengths = [nm_to_cm(l) for l in (20, 40, 80, 160)]
        shifts = [delta_vth_sce(l, STACK, 2.2e-6, 2e18, 1.0) for l in lengths]
        assert all(b < a for a, b in zip(shifts, shifts[1:]))

    def test_negligible_at_long_channel(self):
        dv = delta_vth_sce(nm_to_cm(2000.0), STACK, 2.2e-6, 2e18, 1.2)
        assert dv < 1e-6

    def test_rejects_negative_vds(self):
        with pytest.raises(ParameterError):
            delta_vth_sce(nm_to_cm(45.0), STACK, 2.2e-6, 2e18, vds=-0.1)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ParameterError):
            delta_vth_sce(0.0, STACK, 2.2e-6, 2e18, vds=0.1)


class TestThresholdModel:
    def test_vth_below_long_channel_value(self, model):
        # Roll-off always reduces V_th below its long-channel component.
        assert model.vth(vds=1.2) < model.vth0()

    def test_dibl_positive(self, model):
        assert model.dibl_mv_per_v(1.2) > 0.0

    def test_dibl_requires_vdd_above_lin(self, model):
        with pytest.raises(ParameterError):
            model.dibl_mv_per_v(0.01)

    def test_halo_rollup(self, model):
        # With a halo, V_th(L) rises as L shrinks: the pockets occupy a
        # growing channel fraction and over-compensate the SCE shift.
        lengths = [nm_to_cm(l) for l in (400, 100, 60, 30)]
        curve = model.rolloff_curve(lengths, vds=0.05)
        vths = [v for _l, v in curve]
        assert all(b > a for a, b in zip(vths, vths[1:]))

    def test_halo_free_rolloff(self, model):
        # Without a halo, short-channel effects win: V_th(L) collapses
        # as the channel shortens.
        bare = ThresholdModel(geometry=model.geometry,
                              profile=model.profile.without_halo(),
                              stack=model.stack)
        lengths = [nm_to_cm(l) for l in (400, 100, 60, 30, 15)]
        vths = [v for _l, v in bare.rolloff_curve(lengths, vds=0.05)]
        assert all(b < a for a, b in zip(vths, vths[1:]))
        assert vths[0] - vths[-1] > 0.05

    def test_n_eff_grows_at_short_channel(self, model):
        assert model.n_eff(nm_to_cm(20.0)) > model.n_eff(nm_to_cm(200.0))
