"""Cell-library shootout: the two strategies as a digital designer sees them.

Characterises the INV/NAND2/NOR2 cell set of both 32nm device families
at three supplies (liberty-style tables), then times a representative
critical path (a ripple-carry-adder-class chain of NAND2 stages, sized
by logical effort) and reports the frequency and energy each library
delivers at its own minimum-energy supply.

Run:  python examples/cell_library_shootout.py   (~15 s)
"""

from repro.circuit import InverterChain, size_path
from repro.circuit.cell_library import characterise_design
from repro.scaling import build_sub_vth_family, build_super_vth_family
from repro.units import format_quantity

SUPPLIES = (0.25, 0.30, 0.40)
#: A bit-slice-class critical path: alternating NAND2 logic.
CRITICAL_PATH = ["nand2", "inv", "nand2", "inv", "nand2", "inv",
                 "nand2", "inv"]
PATH_FANOUT = 12.0


def main() -> None:
    designs = {
        "super-vth": build_super_vth_family().design("32nm"),
        "sub-vth": build_sub_vth_family().design("32nm"),
    }

    for label, design in designs.items():
        for vdd in SUPPLIES:
            library = characterise_design(design, vdd=vdd)
            print(library.render())
            print()

    print("=" * 64)
    print(f"Critical path: {' -> '.join(CRITICAL_PATH)} "
          f"(electrical effort {PATH_FANOUT:g})\n")
    for label, design in designs.items():
        mep = InverterChain(design.inverter(0.3)).minimum_energy_point()
        inv = design.inverter(mep.vmin)
        timing = size_path(inv, CRITICAL_PATH, PATH_FANOUT)
        f_max = 1.0 / timing.delay_s
        print(f"{label:10s} @ Vmin={1000 * mep.vmin:.0f} mV: "
              f"path delay {format_quantity(timing.delay_s, 's')}, "
              f"f_max {format_quantity(f_max, 'Hz')}, "
              f"E/cycle {format_quantity(mep.energy.total_j, 'J')}")

    sup = designs["super-vth"]
    sub = designs["sub-vth"]
    mep_sup = InverterChain(sup.inverter(0.3)).minimum_energy_point()
    mep_sub = InverterChain(sub.inverter(0.3)).minimum_energy_point()
    t_sup = size_path(sup.inverter(mep_sup.vmin), CRITICAL_PATH,
                      PATH_FANOUT).delay_s
    t_sub = size_path(sub.inverter(mep_sub.vmin), CRITICAL_PATH,
                      PATH_FANOUT).delay_s
    print(f"\nsub-V_th advantage at V_min: "
          f"{t_sup / t_sub:.1f}x faster, "
          f"{100 * (1 - mep_sub.energy.total_j / mep_sup.energy.total_j):.0f}"
          f" % less energy")


if __name__ == "__main__":
    main()
