"""6T SRAM bitcell noise margins across technology nodes.

The paper singles out SRAM as the circuit most exposed to subthreshold
slope degradation ("noise margins are paramount... tight limits on the
maximum number of bits/line", ref [16]).  This example builds a 6T cell
from each scaling strategy's devices and reports hold and read
butterfly SNM at a 300 mV supply — plus the maximum bits-per-bitline
estimate implied by the access-leakage budget.

Run:  python examples/sram_bitcell.py   (~10 s)
"""

from repro.analysis.tables import render_table
from repro.circuit.sram import (
    SramCell,
    hold_snm,
    max_bits_per_line,
    read_snm,
)
from repro.scaling import build_sub_vth_family, build_super_vth_family

#: SRAM supply for this study [V].
VDD = 0.30
#: Classic cell sizing ratios (pull-down : access : pull-up).
PD_WIDTH_UM = 2.0
AX_WIDTH_UM = 1.0
PU_WIDTH_UM = 1.0


def cell_from_design(design) -> SramCell:
    """Build a 6T cell from one strategy node's device pair."""
    return SramCell(
        pulldown=design.nfet.with_width_um(PD_WIDTH_UM),
        pullup=design.pfet.with_width_um(PU_WIDTH_UM),
        access=design.nfet.with_width_um(AX_WIDTH_UM),
        vdd=VDD,
    )




def main() -> None:
    families = {
        "super-vth": build_super_vth_family(),
        "sub-vth": build_sub_vth_family(),
    }
    rows = []
    for node in ("90nm", "65nm", "45nm", "32nm"):
        row = [node]
        for family in families.values():
            design = family.design(node)
            cell = cell_from_design(design)
            row.append(f"{1000 * hold_snm(cell):.0f}")
            row.append(f"{1000 * read_snm(cell):.0f}")
            row.append(str(max_bits_per_line(cell)))
        rows.append(tuple(row))

    print(render_table(
        ("node",
         "hold mV (sup)", "read mV (sup)", "bits/line (sup)",
         "hold mV (sub)", "read mV (sub)", "bits/line (sub)"),
        rows,
        title=f"== 6T SRAM at V_dd = {1000 * VDD:.0f} mV ==",
    ))

    sup32 = cell_from_design(families["super-vth"].design("32nm"))
    sub32 = cell_from_design(families["sub-vth"].design("32nm"))
    gain = read_snm(sub32) / read_snm(sup32) - 1.0
    print(f"\nread-SNM advantage of sub-V_th scaling at 32nm: "
          f"+{100 * gain:.0f} %")


if __name__ == "__main__":
    main()
