"""Energy budget of a sub-V_th sensor-node processor across nodes.

The paper's motivating applications are RFID tags and sensor
processors with "minute energy budgets" (its refs [1][2] report
2.6 pJ/instruction-class designs).  This example models a small
processor datapath as an effective inverter-chain workload (logic
depth 30, average activity 0.1, ~5k gate-equivalents), operates it at
each node's minimum-energy voltage, and asks the paper's practical
questions:

* how many pJ per operation, and what clock frequency, does each
  scaling strategy deliver?
* how many years would a 1 mAh coin-cell-class charge last at 1 kOPS?

Run:  python examples/sensor_node_budget.py   (~10 s)
"""

from repro.analysis.tables import render_table
from repro.circuit import InverterChain
from repro.scaling import build_sub_vth_family, build_super_vth_family

#: Datapath model: logic depth (stages), activity, gate-equivalents.
LOGIC_DEPTH = 30
ACTIVITY = 0.1
GATE_EQUIVALENTS = 5000
#: Battery scenario.
BATTERY_MAH = 1.0
OPS_PER_SECOND = 1e3


def operate(design):
    """Run the datapath proxy at its V_min; return (vmin, E/op, f_max)."""
    chain = InverterChain(design.inverter(0.3), n_stages=LOGIC_DEPTH,
                          activity=ACTIVITY)
    mep = chain.minimum_energy_point()
    # The 30-stage chain is the critical path; the whole datapath
    # switches GATE_EQUIVALENTS/LOGIC_DEPTH such chains per operation.
    scale = GATE_EQUIVALENTS / LOGIC_DEPTH
    energy_per_op = mep.energy.total_j * scale
    f_max = 1.0 / mep.energy.cycle_time_s
    return mep.vmin, energy_per_op, f_max


def battery_life_years(energy_per_op_j: float) -> float:
    """Years of operation from BATTERY_MAH at OPS_PER_SECOND."""
    battery_j = BATTERY_MAH * 1e-3 * 3600.0 * 3.0   # ~3 V cell chemistry
    seconds = battery_j / (energy_per_op_j * OPS_PER_SECOND)
    return seconds / (365.0 * 24.0 * 3600.0)


def main() -> None:
    rows = []
    for strategy, family in (("super-vth", build_super_vth_family()),
                             ("sub-vth", build_sub_vth_family())):
        for design in family.designs:
            vmin, e_op, f_max = operate(design)
            rows.append((
                strategy,
                design.node.name,
                f"{1000 * vmin:.0f}",
                f"{1e12 * e_op:.2f}",
                f"{f_max / 1e6:.2f}",
                f"{battery_life_years(e_op):.1f}",
            ))
    print(render_table(
        ("strategy", "node", "Vmin mV", "pJ/op", "f_max MHz",
         "battery yrs @1kOPS"),
        rows,
        title="== Sensor-node datapath at the minimum-energy point ==",
    ))
    print(f"\n(datapath model: depth {LOGIC_DEPTH}, activity {ACTIVITY}, "
          f"{GATE_EQUIVALENTS} gate equivalents; battery "
          f"{BATTERY_MAH} mAh at 3 V)")


if __name__ == "__main__":
    main()
