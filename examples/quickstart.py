"""Quickstart: build a subthreshold device pair and analyse an inverter.

Builds a 90nm-class NFET/PFET pair with the paper's four scaling
parameters, prints the device-level metrics (S_S, V_th, I_on/I_off),
then analyses a sub-V_th inverter: noise margins, FO1 delay, and the
minimum-energy operating point of a 30-stage chain.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import render_table
from repro.circuit import Inverter, InverterChain, fo1_delay, noise_margins
from repro.device import nfet, pfet
from repro.units import format_quantity


def main() -> None:
    # The paper's four scaling parameters + width.
    n = nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
             n_p_halo_cm3=1.5e18, width_um=1.0)
    p = pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
             n_p_halo_cm3=1.5e18, width_um=2.0)

    print(render_table(
        ("metric", "NFET", "PFET"),
        [
            ("L_poly", "65 nm", "65 nm"),
            ("L_eff", f"{n.geometry.l_eff_nm:.1f} nm",
             f"{p.geometry.l_eff_nm:.1f} nm"),
            ("S_S", f"{n.ss_mv_per_dec:.1f} mV/dec",
             f"{p.ss_mv_per_dec:.1f} mV/dec"),
            ("V_th (V_ds=50mV)", f"{1000 * n.vth(0.05):.0f} mV",
             f"{1000 * p.vth(0.05):.0f} mV"),
            ("I_off @1.2V", format_quantity(n.i_off_per_um(1.2), "A/um"),
             format_quantity(p.i_off_per_um(1.2), "A/um")),
            ("I_on @1.2V", format_quantity(n.i_on_per_um(1.2), "A/um"),
             format_quantity(p.i_on_per_um(1.2), "A/um")),
            ("I_on/I_off @250mV", f"{n.on_off_ratio(0.25):.0f}",
             f"{p.on_off_ratio(0.25):.0f}"),
        ],
        title="== Device metrics ==",
    ))

    inv = Inverter(nfet=n, pfet=p, vdd=0.25)
    margins = noise_margins(inv)
    delay = fo1_delay(inv, transient=True)
    print("\n== Sub-V_th inverter @ V_dd = 250 mV ==")
    print(f"switching threshold : {1000 * inv.switching_threshold():.1f} mV")
    print(f"SNM (gain=-1)       : {1000 * margins.snm:.1f} mV "
          f"(NM_L {1000 * margins.nm_low:.1f}, "
          f"NM_H {1000 * margins.nm_high:.1f})")
    print(f"FO1 delay           : {format_quantity(delay.transient_s, 's')} "
          f"(analytic {format_quantity(delay.analytic_s, 's')})")

    chain = InverterChain(inv.with_vdd(0.3), n_stages=30, activity=0.1)
    mep = chain.minimum_energy_point()
    print("\n== 30-stage chain, alpha = 0.1 ==")
    print(f"V_min               : {1000 * mep.vmin:.0f} mV")
    print(f"energy per cycle    : {format_quantity(mep.energy.total_j, 'J')}")
    print(f"leakage fraction    : {100 * mep.energy.leakage_fraction:.0f} %")


if __name__ == "__main__":
    main()
