"""Device-designer playground: what each scaling knob does.

The paper's device model has exactly four knobs — L_poly, T_ox, N_sub,
N_p,halo — plus V_dd.  This example turns each knob in isolation
around the optimised 45nm sub-V_th device and shows (as sparkline
tables) how the quantities the paper cares about respond:
S_S, V_th,sat, I_off, I_on at 250 mV, and the gate capacitance.

It ends with the full PTM-style model cards of the optimised 32nm
devices of both strategies.

Run:  python examples/device_designer.py   (~10 s)
"""

import numpy as np

from repro.analysis import sparkline
from repro.analysis.tables import render_table
from repro.device import nfet
from repro.scaling import (
    build_sub_vth_family,
    build_super_vth_family,
    extract_card,
    family_card_table,
)

EVAL_VDD = 0.25


def sweep_knob(base_kwargs: dict, knob: str, values) -> list[dict]:
    rows = []
    for value in values:
        kwargs = dict(base_kwargs)
        kwargs[knob] = value
        dev = nfet(**kwargs)
        rows.append({
            "value": value,
            "ss": dev.ss_mv_per_dec,
            "vth": 1000.0 * dev.vth(EVAL_VDD),
            "ioff": dev.i_off_per_um(EVAL_VDD),
            "ion": dev.i_on_per_um(EVAL_VDD),
            "cg": dev.capacitance.c_gate,
        })
    return rows


def knob_table(name: str, unit: str, rows: list[dict]) -> str:
    def spark(key):
        return sparkline([r[key] for r in rows])

    span = f"{rows[0]['value']:g}..{rows[-1]['value']:g} {unit}"
    return render_table(
        ("metric", f"{name}: {span}", "low -> high"),
        [
            ("S_S mV/dec", f"{rows[0]['ss']:.1f} -> {rows[-1]['ss']:.1f}",
             spark("ss")),
            ("V_th mV", f"{rows[0]['vth']:.0f} -> {rows[-1]['vth']:.0f}",
             spark("vth")),
            ("I_off A/um", f"{rows[0]['ioff']:.2g} -> {rows[-1]['ioff']:.2g}",
             spark("ioff")),
            ("I_on A/um", f"{rows[0]['ion']:.2g} -> {rows[-1]['ion']:.2g}",
             spark("ion")),
            ("C_gate F", f"{rows[0]['cg']:.2g} -> {rows[-1]['cg']:.2g}",
             spark("cg")),
        ],
    )


def main() -> None:
    base = dict(l_poly_nm=47.0, t_ox_nm=1.70, n_sub_cm3=1.7e18,
                n_p_halo_cm3=3.8e18)
    print("Baseline: the 45nm-node sub-V_th-class NFET\n")
    print(knob_table("L_poly", "nm",
                     sweep_knob(base, "l_poly_nm",
                                np.linspace(32, 80, 7))))
    print()
    print(knob_table("T_ox", "nm",
                     sweep_knob(base, "t_ox_nm",
                                np.linspace(1.0, 2.6, 7))))
    print()
    print(knob_table("N_sub", "cm^-3",
                     sweep_knob(base, "n_sub_cm3",
                                np.geomspace(8e17, 5e18, 7))))
    print()
    print(knob_table("N_p,halo", "cm^-3",
                     sweep_knob(base, "n_p_halo_cm3",
                                np.geomspace(5e17, 1.2e19, 7))))

    print("\n" + "=" * 60)
    print("Optimised 32nm devices, both strategies:\n")
    sup = build_super_vth_family().design("32nm")
    sub = build_sub_vth_family().design("32nm")
    print(extract_card(sup.nfet, sup.vdd, "super-vth/32nm/nfet").render())
    print()
    print(extract_card(sub.nfet, 0.30, "sub-vth/32nm/nfet").render())
    print()
    print(family_card_table(build_sub_vth_family()))


if __name__ == "__main__":
    main()
