"""The paper's core narrative: super-V_th vs sub-V_th device scaling.

Runs both scaling-strategy optimisers across the 90nm-32nm nodes
(regenerating the paper's Tables 2 and 3), then compares the two device
families on the paper's three headline circuit metrics at each node:
inverter SNM at 250 mV, FO1 delay at 250 mV, and the minimum-energy
point of a 30-stage chain.

Run:  python examples/scaling_strategies.py   (~10 s)
"""

from repro.analysis.tables import render_table
from repro.circuit import InverterChain, fo1_delay, noise_margins
from repro.scaling import build_sub_vth_family, build_super_vth_family
from repro.units import format_quantity


def family_table(family) -> str:
    rows = []
    for design in family.designs:
        s = design.summary()
        rows.append((
            design.node.name,
            f"{s['l_poly_nm']:.0f}",
            f"{s['t_ox_nm']:.2f}",
            f"{s['n_sub_cm3']:.2e}",
            f"{s['n_halo_cm3']:.2e}",
            f"{s['vth_sat_mv']:.0f}",
            f"{s['ss_mv_per_dec']:.1f}",
        ))
    return render_table(
        ("node", "L_poly nm", "T_ox nm", "N_sub", "N_halo",
         "Vth,sat mV", "S_S mV/dec"),
        rows,
        title=f"== {family.strategy} family ==",
    )


def main() -> None:
    super_family = build_super_vth_family()
    sub_family = build_sub_vth_family()
    print(family_table(super_family))
    print()
    print(family_table(sub_family))

    rows = []
    for d_sup, d_sub in zip(super_family.designs, sub_family.designs):
        snm_sup = noise_margins(d_sup.inverter(0.25)).snm
        snm_sub = noise_margins(d_sub.inverter(0.25)).snm
        t_sup = fo1_delay(d_sup.inverter(0.25), transient=False).analytic_s
        t_sub = fo1_delay(d_sub.inverter(0.25), transient=False).analytic_s
        mep_sup = InverterChain(d_sup.inverter(0.3)).minimum_energy_point()
        mep_sub = InverterChain(d_sub.inverter(0.3)).minimum_energy_point()
        rows.append((
            d_sup.node.name,
            f"{1000 * snm_sup:.0f} / {1000 * snm_sub:.0f}",
            (f"{format_quantity(t_sup, 's')} / "
             f"{format_quantity(t_sub, 's')}"),
            f"{1000 * mep_sup.vmin:.0f} / {1000 * mep_sub.vmin:.0f}",
            (f"{format_quantity(mep_sup.energy.total_j, 'J')} / "
             f"{format_quantity(mep_sub.energy.total_j, 'J')}"),
        ))
    print()
    print(render_table(
        ("node", "SNM mV (sup/sub)", "FO1 delay (sup/sub)",
         "Vmin mV (sup/sub)", "E/cycle (sup/sub)"),
        rows,
        title="== Circuit metrics at 250 mV / V_min ==",
    ))

    snm_gain = (noise_margins(sub_family.design("32nm").inverter(0.25)).snm
                / noise_margins(super_family.design("32nm").inverter(0.25)).snm
                - 1.0)
    e_sup = InverterChain(super_family.design("32nm").inverter(0.3)) \
        .minimum_energy_point().energy.total_j
    e_sub = InverterChain(sub_family.design("32nm").inverter(0.3)) \
        .minimum_energy_point().energy.total_j
    print("\n== Headlines at the 32nm node ==")
    print(f"SNM advantage of sub-V_th scaling : +{100 * snm_gain:.0f} % "
          "(paper: +19 %)")
    print(f"energy advantage at V_min         : {100 * (1 - e_sub / e_sup):.0f} % "
          "(paper: ~23 %)")


if __name__ == "__main__":
    main()
