"""Monte-Carlo timing and noise-margin variability at the 32nm node.

The paper's introduction warns that "timing variability grows
dramatically as V_dd reduces, forcing pessimistic design practices and
large timing margins".  This example quantifies that with random-
dopant-fluctuation Monte Carlo on the two 32nm device families:

* sigma(V_th) per device (RDF),
* FO1-delay distribution at 250 mV (sigma/mu and the 95th-percentile
  margin a designer must budget),
* SNM distribution, including the fraction of cells that lose
  regeneration entirely.

Run:  python examples/variability_montecarlo.py   (~20 s)

Set ``REPRO_EXAMPLES_QUICK=1`` (as the CI smoke job does) to shrink
the trial counts to a few-second sanity run; the statistics are then
too noisy to quote but every code path still executes.
"""

import os

import numpy as np

from repro.analysis.tables import render_table
from repro.scaling import build_sub_vth_family, build_super_vth_family
from repro.variability import (
    delay_distribution,
    rdf_sigma_vth,
    snm_distribution,
)

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") == "1"

VDD = 0.25
N_TRIALS_DELAY = 20 if QUICK else 200
N_TRIALS_SNM = 8 if QUICK else 80


def main() -> None:
    designs = {
        "super-vth": build_super_vth_family().design("32nm"),
        "sub-vth": build_sub_vth_family().design("32nm"),
    }
    rows = []
    for label, design in designs.items():
        inv = design.inverter(VDD)
        sigma_n = rdf_sigma_vth(design.nfet)
        delays = delay_distribution(inv, n_trials=N_TRIALS_DELAY)
        snms = snm_distribution(inv, n_trials=N_TRIALS_SNM)
        failures = float(np.mean(snms.samples <= 0.0))
        rows.append((
            label,
            f"{1000 * sigma_n:.1f}",
            f"{100 * delays.sigma_over_mean:.0f}",
            f"{delays.p95 / delays.p50:.2f}",
            f"{1000 * snms.mean:.1f}",
            f"{100 * failures:.1f}",
        ))
    print(render_table(
        ("strategy", "sigma(Vth) mV", "delay sigma/mu %",
         "p95/p50 delay", "mean SNM mV", "SNM failures %"),
        rows,
        title=f"== 32nm RDF Monte Carlo at V_dd = {1000 * VDD:.0f} mV ==",
    ))
    print("\nThe sub-V_th device's longer gate (larger area) and lighter "
          "channel doping buy it a variability margin on top of its "
          "nominal SNM and delay advantages.")


if __name__ == "__main__":
    main()
