"""SPICE-style netlist simulation with the built-in nodal solver.

Three mini-studies on the 32nm sub-V_th devices, all through the
general-purpose netlist/MNA engine (rather than the specialised
inverter solvers):

1. a 5-stage ring oscillator — transient simulation, measured
   frequency vs the analytic estimate;
2. an SRAM latch write — drive the cell to the opposite state through
   an access transistor and watch it regenerate;
3. a logical-effort-sized buffer chain driving a large load — the
   sized chain beats the naive single-gate driver.

Run:  python examples/netlist_simulation.py   (~30 s)
"""

import numpy as np

from repro.circuit import Circuit, NodalSolver, RingOscillator
from repro.circuit.logical_effort import best_stage_count, size_path
from repro.scaling import build_sub_vth_family
from repro.units import format_quantity

VDD = 0.30


def ring_oscillator_study(design) -> None:
    print("== 5-stage ring oscillator (32nm sub-V_th) ==")
    n_dev, p_dev = design.nfet, design.pfet
    c = Circuit()
    c.add_vsource("vdd", "vdd", VDD)
    nodes = [f"n{i}" for i in range(5)]
    c_load = 1.5e-15
    for i in range(5):
        c.add_inverter(f"i{i}", nodes[i], nodes[(i + 1) % 5], "vdd",
                       n_dev, p_dev)
        c.add_capacitor(f"cl{i}", nodes[(i + 1) % 5], "0", c_load)

    estimate = RingOscillator(design.inverter(VDD), n_stages=5)
    t_est = 1.0 / estimate.frequency_hz()
    seed = {f"n{i}": (0.0 if i % 2 == 0 else VDD) for i in range(5)}
    result = NodalSolver(c).solve_transient(
        6.0 * t_est, t_est / 60.0, initial=seed,
        use_initial_conditions=True)

    wave = result.voltages["n0"]
    above = wave >= VDD / 2.0
    edges = np.flatnonzero(~above[:-1] & above[1:])
    if edges.size >= 2:
        period = float(np.mean(np.diff(result.time_s[edges])))
        print(f"measured frequency : "
              f"{format_quantity(1.0 / period, 'Hz')}")
    print(f"analytic estimate  : "
          f"{format_quantity(estimate.frequency_hz(), 'Hz')} "
          "(FO1 model; the netlist adds explicit wire load)")
    print()


def sram_write_study(design) -> None:
    print("== SRAM latch write (32nm sub-V_th) ==")
    n_dev, p_dev = design.nfet, design.pfet
    c = Circuit()
    c.add_vsource("vdd", "vdd", VDD)
    c.add_inverter("i1", "q", "qb", "vdd", n_dev, p_dev)
    c.add_inverter("i2", "qb", "q", "vdd", n_dev, p_dev)
    c.add_capacitor("cq", "q", "0", 1e-15)
    c.add_capacitor("cqb", "qb", "0", 1e-15)
    # Access transistor from a grounded bitline, gated by a wordline
    # pulse: writes a 0 into the q node.
    c.add_vsource("bl", "bl_node", 0.001)
    c.add_vsource("wl", "wl_node",
                  lambda t: VDD if 1e-7 < t < 6e-7 else 0.0)
    c.add_mosfet("max", "q", "wl_node", "bl_node",
                 n_dev.with_width_um(2.0))
    c.add_resistor("rbl", "bl_node", "0", 1e3)

    solver = NodalSolver(c)
    result = solver.solve_transient(
        1.2e-6, 5e-9, initial={"q": VDD, "qb": 0.0},
        use_initial_conditions=True)
    q_start = result.voltages["q"][0]
    q_end = result.voltages["q"][-1]
    qb_end = result.voltages["qb"][-1]
    print(f"q before write : {q_start:.3f} V (holding a 1)")
    print(f"q after write  : {q_end:.3f} V, qb = {qb_end:.3f} V "
          f"({'flipped' if q_end < VDD / 2 < qb_end else 'FAILED'})")
    print()


def buffer_sizing_study(design) -> None:
    print("== Driving a 100x load: logical-effort sizing ==")
    inv = design.inverter(VDD)
    total_effort = 100.0
    naive = size_path(inv, ["inv"], total_effort)
    n_opt, _delay = best_stage_count(inv, total_effort)
    sized = size_path(inv, ["inv"] * n_opt, total_effort)
    print(f"single stage       : {format_quantity(naive.delay_s, 's')}")
    print(f"{n_opt}-stage sized chain: "
          f"{format_quantity(sized.delay_s, 's')} "
          f"({naive.delay_s / sized.delay_s:.1f}x faster)")
    print(f"stage sizes        : "
          + " : ".join(f"{s:.1f}" for s in sized.relative_sizes))


def main() -> None:
    design = build_sub_vth_family().design("32nm")
    ring_oscillator_study(design)
    sram_write_study(design)
    buffer_sizing_study(design)


if __name__ == "__main__":
    main()
